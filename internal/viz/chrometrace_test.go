package viz

import (
	"bytes"
	"encoding/json"
	"testing"

	"vppb/internal/trace"
)

func TestRenderChromeTrace(t *testing.T) {
	tl := exampleTimeline(t)
	data, err := RenderChromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Pid   int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var metas, threadSlices, cpuSlices, instants int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "M":
			metas++
		case ev.Phase == "X" && ev.Pid == chromePidThreads:
			threadSlices++
			if ev.Dur <= 0 {
				t.Errorf("slice %q has non-positive duration %v", ev.Name, ev.Dur)
			}
		case ev.Phase == "X" && ev.Pid == chromePidCPUs:
			cpuSlices++
		case ev.Phase == "i":
			instants++
		default:
			t.Errorf("unexpected event: phase=%q pid=%d", ev.Phase, ev.Pid)
		}
	}
	if metas == 0 || threadSlices == 0 || cpuSlices == 0 || instants == 0 {
		t.Errorf("missing event categories: metas=%d threadSlices=%d cpuSlices=%d instants=%d",
			metas, threadSlices, cpuSlices, instants)
	}

	// Every running slice on the thread process must be mirrored on the CPU
	// process, so both views show the same occupancy.
	var running int
	for _, th := range tl.Threads {
		for _, s := range th.Spans {
			if s.State == trace.StateRunning && s.End > s.Start {
				running++
			}
		}
	}
	if cpuSlices != running {
		t.Errorf("CPU-process slices = %d, want %d (one per running span)", cpuSlices, running)
	}
}

func TestRenderChromeTraceDeterministic(t *testing.T) {
	tl := exampleTimeline(t)
	a, err := RenderChromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderChromeTrace(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two renders of the same timeline differ")
	}
}

func TestRenderChromeTraceEmpty(t *testing.T) {
	if _, err := RenderChromeTrace(nil); err == nil {
		t.Error("nil timeline accepted")
	}
	if _, err := RenderChromeTrace(&trace.Timeline{}); err == nil {
		t.Error("empty timeline accepted")
	}
}
