package viz

import (
	"bytes"
	"encoding/json"
	"fmt"

	"vppb/internal/trace"
)

// This file exports a predicted execution as Chrome trace-event JSON (the
// "JSON Array Format" both chrome://tracing and ui.perfetto.dev load), so
// timelines predicted from either frontend can be inspected in a standard
// trace viewer next to the original `go tool trace` capture.
//
// Layout: process 1 holds one track per thread carrying its running and
// runnable spans plus an instant event per thread-library call; process 2
// holds one track per simulated CPU showing which thread occupied it.

// chromeEvent is one entry of the traceEvents array. Fields follow the
// trace-event format's one-letter names.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts,omitempty"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

const (
	chromePidThreads = 1
	chromePidCPUs    = 2
)

// RenderChromeTrace serializes a timeline as Chrome/Perfetto trace-event
// JSON. Output is deterministic: events follow the timeline's thread order
// and each thread's span/event order.
func RenderChromeTrace(tl *trace.Timeline) ([]byte, error) {
	if tl == nil || len(tl.Threads) == 0 {
		return nil, fmt.Errorf("viz: empty timeline")
	}
	var events []chromeEvent

	meta := func(pid int, tid int64, what, name string) {
		events = append(events, chromeEvent{
			Name: what, Phase: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidThreads, 0, "process_name", fmt.Sprintf("%s — threads", tl.Program))
	meta(chromePidCPUs, 0, "process_name", fmt.Sprintf("%s — CPUs", tl.Program))

	for i := range tl.Threads {
		th := &tl.Threads[i]
		tid := int64(th.Info.ID)
		name := th.Info.Name
		if name == "" {
			name = fmt.Sprintf("T%d", th.Info.ID)
		}
		if th.Info.Func != "" {
			name += " (" + th.Info.Func + ")"
		}
		meta(chromePidThreads, tid, "thread_name", name)

		for _, s := range th.Spans {
			if s.End <= s.Start {
				continue
			}
			switch s.State {
			case trace.StateRunning:
				events = append(events, chromeEvent{
					Name: "running", Phase: "X",
					Ts: float64(s.Start), Dur: float64(s.End - s.Start),
					Pid: chromePidThreads, Tid: tid,
					Args: map[string]any{"cpu": s.CPU},
				})
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("T%d %s", th.Info.ID, th.Info.Name), Phase: "X",
					Ts: float64(s.Start), Dur: float64(s.End - s.Start),
					Pid: chromePidCPUs, Tid: int64(s.CPU),
				})
			case trace.StateRunnable:
				events = append(events, chromeEvent{
					Name: "runnable", Phase: "X",
					Ts: float64(s.Start), Dur: float64(s.End - s.Start),
					Pid: chromePidThreads, Tid: tid,
				})
			}
		}
		for _, pe := range th.Events {
			if pe.Event.Class != trace.Before {
				continue
			}
			args := map[string]any{"cpu": pe.CPU}
			if pe.Event.Object != 0 {
				args["object"] = tl.ObjectName(pe.Event.Object)
			}
			if pe.Event.Target != 0 {
				args["target"] = fmt.Sprintf("T%d", pe.Event.Target)
			}
			if !pe.Event.Loc.IsZero() {
				args["source"] = pe.Event.Loc.String()
			}
			events = append(events, chromeEvent{
				Name: pe.Event.Call.String(), Phase: "i",
				Ts: float64(pe.Start), Pid: chromePidThreads, Tid: tid,
				Scope: "t", Args: args,
			})
		}
	}
	for cpu := 0; cpu < tl.CPUs; cpu++ {
		meta(chromePidCPUs, int64(cpu), "thread_name", fmt.Sprintf("cpu %d", cpu))
	}

	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			buf.WriteString(",\n")
		}
		buf.Write(data)
	}
	buf.WriteString("\n]}\n")
	return buf.Bytes(), nil
}
