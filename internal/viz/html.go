package viz

import (
	"fmt"
	"html"
	"strings"

	"vppb/internal/analysis"
)

// HTMLOptions configures the self-contained HTML report.
type HTMLOptions struct {
	// Title heads the report.
	Title string
	// SVG sizes the embedded graphs.
	SVG SVGOptions
	// TopN bounds the contention and thread tables; 0 means 15.
	TopN int
}

// RenderHTML produces a single-file HTML report of an execution: the two
// graphs of the paper's figure 5 as inline SVG (hover any event glyph for
// its popup details), the per-object contention ranking, and the
// most-blocked threads — everything a tuning session needs in one
// artifact that opens in any browser.
func RenderHTML(v *View, opts HTMLOptions) (string, error) {
	if opts.TopN <= 0 {
		opts.TopN = 15
	}
	if opts.Title == "" {
		opts.Title = v.Timeline().Program
	}
	opts.SVG.Title = ""

	rep, err := analysis.Analyze(v.Timeline())
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s — vppb report</title>\n", html.EscapeString(opts.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-family: monospace; font-size: 13px; }
th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: right; }
th { background: #f0f0f0; } td:first-child, th:first-child { text-align: left; }
.meta { color: #555; font-size: 13px; }
svg { border: 1px solid #ddd; margin-top: 0.6em; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(opts.Title))
	tl := v.Timeline()
	start, end := v.Window()
	fmt.Fprintf(&b, `<p class="meta">%d CPUs, %d LWPs, %d threads; execution time %s; window %s .. %s</p>`+"\n",
		tl.CPUs, tl.LWPs, len(tl.Threads), tl.Duration, start, end)

	b.WriteString("<h2>Parallelism and execution flow</h2>\n")
	b.WriteString(`<p class="meta">green: running; red: runnable but not running; hover an event glyph for its details</p>` + "\n")
	b.WriteString(RenderSVG(v, opts.SVG))

	b.WriteString("<h2>Synchronization objects by total operation time</h2>\n")
	b.WriteString("<table><tr><th>object</th><th>kind</th><th>ops</th><th>acquires</th><th>total time</th><th>max op</th><th>threads</th></tr>\n")
	for i, oc := range rep.Objects {
		if i >= opts.TopN {
			break
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td></tr>\n",
			html.EscapeString(oc.Name), oc.Kind, oc.Ops, oc.AcquireOps, oc.TotalTime, oc.MaxWait, oc.Threads)
	}
	b.WriteString("</table>\n")

	if cpuRep, err := analysis.AnalyzeCPUs(v.Timeline()); err == nil {
		b.WriteString("<h2>Per-CPU occupancy</h2>\n")
		b.WriteString("<table><tr><th>cpu</th><th>busy</th><th>utilization</th><th>threads</th><th>dispatches</th></tr>\n")
		for _, u := range cpuRep.CPUs {
			fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%.1f%%</td><td>%d</td><td>%d</td></tr>\n",
				u.CPU, u.Busy, 100*u.Utilization, u.Threads, u.Dispatches)
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("<h2>Most-blocked threads</h2>\n")
	b.WriteString("<table><tr><th>thread</th><th>running</th><th>runnable</th><th>blocked</th></tr>\n")
	for i, tb := range rep.Threads {
		if i >= opts.TopN {
			break
		}
		name := tb.Name
		if name == "" {
			name = fmt.Sprintf("T%d", tb.ID)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(name), tb.Running, tb.Runnable, tb.Blocked)
	}
	b.WriteString("</table>\n")

	if top, ok := rep.Bottleneck(); ok {
		share := 0.0
		if tl.Duration > 0 {
			share = top.TotalTime.Seconds() / (tl.Duration.Seconds() * float64(maxInt(1, tl.CPUs)))
		}
		fmt.Fprintf(&b, `<p class="meta">dominant object: %s (%s), %d operations totalling %s (%.0f%% of machine time)</p>`+"\n",
			html.EscapeString(top.Name), top.Kind, top.Ops, top.TotalTime, 100*share)
	}
	b.WriteString("</body></html>\n")
	return b.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
