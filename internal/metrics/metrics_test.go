package metrics

import (
	"math"
	"strings"
	"testing"

	"vppb/internal/vtime"
)

func TestSpeedup(t *testing.T) {
	if s := Speedup(100*vtime.Second, 25*vtime.Second); s != 4.0 {
		t.Fatalf("Speedup = %v", s)
	}
	// A zero or negative predicted time has no defined speed-up. 0 would
	// read as "no speed-up at all" downstream; NaN is unmistakable.
	if s := Speedup(100, 0); !math.IsNaN(s) {
		t.Fatalf("Speedup with zero TP = %v, want NaN", s)
	}
	if s := Speedup(100, -5); !math.IsNaN(s) {
		t.Fatalf("Speedup with negative TP = %v, want NaN", s)
	}
}

func TestPredictionError(t *testing.T) {
	// Paper example: Ocean on 8 CPUs, real 6.65, predicted 6.24: 6.2%.
	e := PredictionError(6.65, 6.24)
	if e < 0.061 || e > 0.063 {
		t.Fatalf("error = %v, want ~0.062", e)
	}
	// Dividing by a zero real speed-up is undefined; a 0 result would
	// look like a perfect prediction.
	if e := PredictionError(0, 5); !math.IsNaN(e) {
		t.Fatalf("zero real gave %v, want NaN", e)
	}
	// Over-prediction gives a negative error.
	if PredictionError(2.0, 2.2) >= 0 {
		t.Fatal("over-prediction should be negative")
	}
}

func TestRunSetStats(t *testing.T) {
	var r RunSet
	for _, v := range []float64{3.87, 3.91, 3.79, 3.95, 3.83} {
		r.Add(v)
	}
	if m := r.Median(); m != 3.87 {
		t.Fatalf("median = %v", m)
	}
	if r.Min() != 3.79 || r.Max() != 3.95 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	var even RunSet
	even.Add(1)
	even.Add(3)
	if even.Median() != 2 {
		t.Fatalf("even median = %v", even.Median())
	}
	var empty RunSet
	if empty.Median() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty RunSet stats must be zero")
	}
}

func buildTable() *Table {
	cell := func(cpus int, real []float64, pred, pReal, pPred float64) Cell {
		c := Cell{CPUs: cpus, Predicted: pred, PaperReal: pReal, PaperPredicted: pPred}
		for _, v := range real {
			c.Real.Add(v)
		}
		return c
	}
	return &Table{Rows: []Row{
		{Application: "Ocean", Cells: []Cell{
			cell(2, []float64{1.97, 1.96, 1.98}, 1.96, 1.97, 1.96),
			cell(8, []float64{6.65, 6.18, 6.82}, 6.24, 6.65, 6.24),
		}},
		{Application: "FFT", Cells: []Cell{
			cell(2, []float64{1.55}, 1.55, 1.55, 1.55),
			cell(8, []float64{2.62}, 2.61, 2.62, 2.61),
		}},
	}}
}

func TestTableFormat(t *testing.T) {
	out := buildTable().Format()
	for _, want := range []string{
		"Ocean", "FFT", "Real", "Pred", "Error", "Paper",
		"2 processors", "8 processors",
		"6.65 (6.18-6.82)", "6.24", "6.2%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableMaxAbsError(t *testing.T) {
	tb := buildTable()
	e := tb.MaxAbsError()
	if e < 0.061 || e > 0.063 {
		t.Fatalf("MaxAbsError = %v", e)
	}
}

func TestCellError(t *testing.T) {
	c := Cell{Predicted: 3.0}
	c.Real.Add(4.0)
	if e := c.Error(); e != 0.25 {
		t.Fatalf("cell error = %v", e)
	}
}

func TestTableFormatDegenerateCells(t *testing.T) {
	// A cell with no real measurements (median 0) has an undefined error,
	// and a NaN prediction has no printable value: both render as n/a.
	tb := &Table{Rows: []Row{
		{Application: "broken", Cells: []Cell{
			{CPUs: 2, Predicted: math.NaN()},
		}},
	}}
	out := tb.Format()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("degenerate cells not rendered as n/a:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("raw NaN leaked into the table:\n%s", out)
	}
}

func TestMaxAbsErrorSkipsNaN(t *testing.T) {
	tb := buildTable()
	// Add a row whose error is undefined; it must not poison the maximum.
	tb.Rows = append(tb.Rows, Row{Application: "broken", Cells: []Cell{
		{CPUs: 2, Predicted: 1.5}, // no real runs: median 0, error NaN
	}})
	e := tb.MaxAbsError()
	if math.IsNaN(e) {
		t.Fatal("NaN cell poisoned MaxAbsError")
	}
	if e < 0.061 || e > 0.063 {
		t.Fatalf("MaxAbsError = %v, want ~0.062", e)
	}
}
