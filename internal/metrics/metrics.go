// Package metrics computes and formats the quantities the paper reports:
// speed-ups, prediction errors, and the measured-vs-predicted rows of
// Table 1.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vppb/internal/vtime"
)

// Speedup is T1/TP. A non-positive predicted time has no defined
// speed-up, so the result is NaN — not 0, which would silently read as
// "infinitely slow" in comparisons and averages. Table formatting
// renders NaN cells as "n/a".
func Speedup(t1, tp vtime.Duration) float64 {
	if tp <= 0 {
		return math.NaN()
	}
	return float64(t1) / float64(tp)
}

// PredictionError is the paper's error definition:
// ((real speed-up) - (predicted speed-up)) / (real speed-up).
// A zero real speed-up makes the ratio undefined, so the result is NaN —
// a 0 here would masquerade as a perfect prediction.
func PredictionError(real, predicted float64) float64 {
	if real == 0 {
		return math.NaN()
	}
	return (real - predicted) / real
}

// RunSet summarizes repeated measurements of one quantity: the paper
// reports the middle value of five executions with the minimum and maximum
// in parentheses.
type RunSet struct {
	Values []float64
}

// Add appends one measurement.
func (r *RunSet) Add(v float64) { r.Values = append(r.Values, v) }

// Median returns the middle value (mean of middles for even counts).
func (r *RunSet) Median() float64 {
	n := len(r.Values)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), r.Values...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the smallest measurement.
func (r *RunSet) Min() float64 {
	if len(r.Values) == 0 {
		return 0
	}
	m := r.Values[0]
	for _, v := range r.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement.
func (r *RunSet) Max() float64 {
	if len(r.Values) == 0 {
		return 0
	}
	m := r.Values[0]
	for _, v := range r.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Cell is one application × processor-count entry of Table 1.
type Cell struct {
	CPUs      int
	Real      RunSet  // speed-ups of repeated reference executions
	Predicted float64 // speed-up predicted by the Simulator
	// PaperReal and PaperPredicted are the values printed in the paper,
	// for side-by-side comparison in the harness output.
	PaperReal      float64
	PaperPredicted float64
}

// Error returns the prediction error of the cell.
func (c *Cell) Error() float64 {
	return PredictionError(c.Real.Median(), c.Predicted)
}

// Row is one application of Table 1.
type Row struct {
	Application string
	Cells       []Cell
}

// Table is the paper's Table 1: measured and predicted speed-ups.
type Table struct {
	Rows []Row
}

// Format renders the table in the paper's layout: per application, a Real
// line with (min-max), a Pred line, and an Error line. When paper values
// are present a "Paper" column pair is appended.
func (t *Table) Format() string {
	var b strings.Builder
	cpuSet := map[int]bool{}
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			cpuSet[c.CPUs] = true
		}
	}
	cpus := make([]int, 0, len(cpuSet))
	for c := range cpuSet {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)

	fmt.Fprintf(&b, "%-14s %-6s", "Application", "")
	for _, c := range cpus {
		fmt.Fprintf(&b, " %16s", fmt.Sprintf("%d processors", c))
	}
	b.WriteByte('\n')
	hr := strings.Repeat("-", 21+17*len(cpus))
	fmt.Fprintln(&b, hr)
	for _, row := range t.Rows {
		cellFor := func(cpu int) *Cell {
			for i := range row.Cells {
				if row.Cells[i].CPUs == cpu {
					return &row.Cells[i]
				}
			}
			return nil
		}
		fmt.Fprintf(&b, "%-14s %-6s", row.Application, "Real")
		for _, cpu := range cpus {
			if c := cellFor(cpu); c != nil {
				fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.2f (%.2f-%.2f)", c.Real.Median(), c.Real.Min(), c.Real.Max()))
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-14s %-6s", "", "Pred")
		for _, cpu := range cpus {
			if c := cellFor(cpu); c != nil && !math.IsNaN(c.Predicted) {
				fmt.Fprintf(&b, " %16.2f", c.Predicted)
			} else if c != nil {
				fmt.Fprintf(&b, " %16s", "n/a")
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-14s %-6s", "", "Error")
		for _, cpu := range cpus {
			if c := cellFor(cpu); c != nil && !math.IsNaN(c.Error()) {
				fmt.Fprintf(&b, " %15.1f%%", 100*abs(c.Error()))
			} else if c != nil {
				fmt.Fprintf(&b, " %16s", "n/a")
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
		if hasPaper(row) {
			fmt.Fprintf(&b, "%-14s %-6s", "", "Paper")
			for _, cpu := range cpus {
				if c := cellFor(cpu); c != nil && c.PaperReal != 0 {
					fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.2f/%.2f", c.PaperReal, c.PaperPredicted))
				} else {
					fmt.Fprintf(&b, " %16s", "-")
				}
			}
			b.WriteByte('\n')
		}
		fmt.Fprintln(&b, hr)
	}
	return b.String()
}

func hasPaper(r Row) bool {
	for _, c := range r.Cells {
		if c.PaperReal != 0 {
			return true
		}
	}
	return false
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// MaxAbsError returns the largest absolute prediction error in the
// table. Cells with an undefined error (NaN) are skipped: every NaN
// comparison is false, so they never become the maximum.
func (t *Table) MaxAbsError() float64 {
	max := 0.0
	for _, r := range t.Rows {
		for i := range r.Cells {
			if e := abs(r.Cells[i].Error()); e > max {
				max = e
			}
		}
	}
	return max
}
