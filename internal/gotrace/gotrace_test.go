package gotrace

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vppb/internal/core"
	"vppb/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files")

const fixture = "testdata/go-mutexchan.trace"

func readFixture(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSniff(t *testing.T) {
	if !Sniff(readFixture(t)) {
		t.Error("Sniff rejected the committed fixture")
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("# vppb-log v1\n"),
		[]byte("VPPBLOG1"),
		[]byte("go 1.23 trace"), // missing the trailing NULs
		[]byte("got 1.23 trace\x00\x00\x00"),
	} {
		if Sniff(bad) {
			t.Errorf("Sniff accepted %q", bad)
		}
	}
	if !Sniff([]byte("go 1.22 trace\x00\x00\x00")) {
		t.Error("Sniff rejected a go1.22 header")
	}
}

func TestParseFixture(t *testing.T) {
	gens, err := parse(readFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("generations = %d, want 1", len(gens))
	}
	g := gens[0]
	if g.freq == 0 {
		t.Error("no frequency recorded")
	}
	if len(g.events) == 0 || len(g.strings) == 0 || len(g.stacks) == 0 {
		t.Fatalf("events=%d strings=%d stacks=%d: all must be non-empty",
			len(g.events), len(g.strings), len(g.stacks))
	}
	for i := 1; i < len(g.events); i++ {
		if g.events[i].tick < g.events[i-1].tick {
			t.Fatalf("event %d out of time order", i)
		}
	}
}

// TestConvertFixture pins the structure the committed capture converts to:
// the demo program's goroutines and its mutex, channel, select, sleep and
// syscall sites, all attributed to stable source positions.
func TestConvertFixture(t *testing.T) {
	l, err := Convert(readFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.Header.Program, "gotrace"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
	if l.Header.CPUs != 1 || l.Header.LWPs != 1 {
		t.Errorf("header machine = %d CPUs/%d LWPs, want 1/1", l.Header.CPUs, l.Header.LWPs)
	}
	if len(l.Threads) != 6 {
		t.Errorf("threads = %d, want 6 (main + trace writer + 2 workers + producer + consumer)", len(l.Threads))
	}
	if th := l.Thread(trace.MainThread); th == nil || th.Name != "main" {
		t.Errorf("main thread missing or misnamed: %+v", th)
	}
	wantObjects := map[string]trace.ObjectKind{
		"mutex@demo/main.go:56":     trace.ObjMutex,
		"chan-send@demo/main.go:69": trace.ObjSema,
		"select@demo/main.go:77":    trace.ObjSema,
		"sleep@demo/main.go:86":     trace.ObjDevice,
	}
	kinds := make(map[string]trace.ObjectKind)
	for _, o := range l.Objects {
		kinds[o.Name] = o.Kind
	}
	for name, kind := range wantObjects {
		if got, ok := kinds[name]; !ok || got != kind {
			t.Errorf("object %q: got kind %v (present=%v), want %v", name, got, ok, kind)
		}
	}
	if err := l.Validate(); err != nil {
		t.Errorf("converted log invalid: %v", err)
	}
}

// TestConvertDeterministic is the round-trip acceptance test: the
// committed capture converts to a byte-stable log, and simulating it at 1,
// 2 and 4 CPUs yields byte-stable predicted timelines. Run with -update to
// regenerate the goldens after an intentional conversion change.
func TestConvertDeterministic(t *testing.T) {
	data := readFixture(t)
	l, err := Convert(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two independent conversions must agree byte for byte.
	l2, err := Convert(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc, enc2 := trace.AppendText(nil, l), trace.AppendText(nil, l2)
	if !bytes.Equal(enc, enc2) {
		t.Fatal("two conversions of the same trace differ")
	}
	compareGolden(t, "testdata/go-mutexchan.golden.log", enc)

	var predict bytes.Buffer
	for _, cpus := range []int{1, 2, 4} {
		res, err := core.Simulate(l, core.Machine{CPUs: cpus})
		if err != nil {
			t.Fatalf("cpus=%d: %v", cpus, err)
		}
		tlBytes, err := trace.MarshalTimeline(res.Timeline)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&predict, "cpus=%d predicted=%s events=%d timeline=%x\n",
			cpus, res.Duration, res.Events, sha256.Sum256(tlBytes))
	}
	compareGolden(t, "testdata/go-mutexchan.predict.golden", predict.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/gotrace -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		diffPath := filepath.Join(t.TempDir(), filepath.Base(path))
		os.WriteFile(diffPath, got, 0o644)
		t.Errorf("%s: output differs from golden (got %d bytes, want %d; new output in %s; -update to accept)",
			path, len(got), len(want), diffPath)
	}
}

// TestConvertProfile checks the converted log feeds the Simulator's
// profile builder: every thread contributes CPU time and the mutex workers
// contend on the same object.
func TestConvertProfile(t *testing.T) {
	l, err := Convert(readFixture(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := trace.BuildProfile(l)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalCPU() <= 0 {
		t.Error("profile has no CPU time")
	}
	// The two workers block on the mutex object in the recording, so the
	// converted profile must carry sema_wait records against it.
	var waits int
	for _, id := range prof.ThreadIDs() {
		for _, c := range prof.Threads[id].Calls {
			if c.Call == trace.CallSemaWait && l.ObjectName(c.Object) == "mutex@demo/main.go:56" {
				waits++
			}
		}
	}
	if waits == 0 {
		t.Error("no sema_wait records against the demo mutex")
	}
}

func TestConvertErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not a trace", []byte("hello world")},
		{"vppb text log", []byte("# vppb-log v1\n")},
		{"header only", []byte("go 1.23 trace\x00\x00\x00")},
		{"old version", []byte("go 1.19 trace\x00\x00\x00junk")},
		{"bad batch type", append([]byte("go 1.23 trace\x00\x00\x00"), 0x7f)},
		{"truncated batch", append([]byte("go 1.23 trace\x00\x00\x00"), 1, 1, 1, 1, 200)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Convert(tc.data, Options{}); err == nil {
				t.Error("Convert accepted malformed input")
			}
		})
	}
}

// TestConvertProgramOption checks the recording name override.
func TestConvertProgramOption(t *testing.T) {
	l, err := Convert(readFixture(t), Options{Program: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Header.Program != "demo" {
		t.Errorf("program = %q, want %q", l.Header.Program, "demo")
	}
}
