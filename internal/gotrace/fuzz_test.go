package gotrace

import (
	"os"
	"testing"

	"vppb/internal/faultinject"
)

// FuzzConvert drives the whole frontend — wire parser, state machine,
// layout — with arbitrary bytes. The invariant is the ingestion contract:
// Convert either returns a structurally valid log or a clean error; it
// never panics and never returns an invalid log (Convert self-validates,
// so a nil error implies Validate passed). The corpus seeds the committed
// capture plus one byte-level corruption of it per faultinject class.
func FuzzConvert(f *testing.F) {
	data, err := os.ReadFile(fixture)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	for _, class := range faultinject.Classes() {
		for seed := int64(1); seed <= 3; seed++ {
			corrupted, _ := faultinject.CorruptBytes(data, class, seed)
			f.Add(corrupted)
		}
	}
	f.Add([]byte("go 1.23 trace\x00\x00\x00"))
	f.Add([]byte("go 1.22 trace\x00\x00\x00\x01\x01\x01\x01\x00"))

	f.Fuzz(func(t *testing.T, input []byte) {
		log, err := Convert(input, Options{})
		if err != nil {
			return
		}
		if log == nil {
			t.Fatal("nil log with nil error")
		}
		if verr := log.Validate(); verr != nil {
			t.Fatalf("Convert returned an invalid log: %v", verr)
		}
	})
}
