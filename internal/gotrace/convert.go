package gotrace

import (
	"fmt"

	"vppb/internal/source"
	"vppb/internal/trace"
)

// Goroutine status codes carried by GoStatus / GoStatusStack events.
const (
	goBad = iota
	goRunnable
	goRunning
	goSyscall
	goWaiting
)

// depReasons are the block reasons where the goroutine is woken by an
// identifiable peer goroutine acting on a synchronization object. These
// become sema wait/post pairs in the converted log, so the Simulator can
// re-decide who blocks under a different CPU count. Every other reason
// (sleep, network, GC assist, ...) is a fixed-duration wait and becomes an
// io record against a FIFO device.
var depReasons = map[string]bool{
	"sync":                true,
	"sync.(*Cond).Wait":   true,
	"chan send":           true,
	"chan receive":        true,
	"select":              true,
	"GC assist wait":      false, // runtime-internal; duration-like
	"sync.WaitGroup.Wait": true,  // emitted by newer runtimes; older ones use "sync"
	"sync.Mutex.Lock":     true,  // likewise
	"sync.RWMutex.RLock":  true,
	"sync.RWMutex.Lock":   true,
}

// reasonLabel maps a block reason to the object-name label and object kind
// used in the converted log.
func reasonLabel(reason string) (string, trace.ObjectKind) {
	switch reason {
	case "sync", "sync.Mutex.Lock":
		return "mutex", trace.ObjMutex
	case "sync.RWMutex.RLock", "sync.RWMutex.Lock":
		return "rwlock", trace.ObjRWLock
	case "sync.(*Cond).Wait":
		return "cond", trace.ObjCond
	case "sync.WaitGroup.Wait":
		return "waitgroup", trace.ObjSema
	case "chan send":
		return "chan-send", trace.ObjSema
	case "chan receive":
		return "chan-recv", trace.ObjSema
	case "select":
		return "select", trace.ObjSema
	case "sleep":
		return "sleep", trace.ObjDevice
	case "network":
		return "net", trace.ObjDevice
	case "syscall":
		return "syscall", trace.ObjDevice
	case "":
		return "wait", trace.ObjDevice
	}
	label := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		if c == ' ' || c == '(' || c == ')' || c == '*' {
			c = '-'
		}
		label = append(label, c)
	}
	return string(label), trace.ObjDevice
}

// opKind enumerates the intermediate per-goroutine operations the state
// machine extracts before the uni-processor layout pass.
type opKind uint8

const (
	opCreate opKind = iota // spawn another goroutine
	opWait                 // block on a synchronization object
	opPost                 // wake the next waiter of an object
	opIO                   // fixed-duration wait on a device
	opYield                // involuntary reschedule (GoStop)
	opExit                 // goroutine ends
)

// op is one operation with the CPU burst the goroutine consumed before it.
type op struct {
	kind   opKind
	timeNS uint64 // when the operation happened in the original run
	cpuNS  uint64 // CPU burst executed before the operation
	durNS  uint64 // service time of an opIO
	obj    int    // index into the converter's object table, -1 none
	target uint64 // goroutine ID spawned by an opCreate
	loc    source.Loc
}

// pendingBlock remembers an unresolved GoBlock (or syscall begin) until the
// matching wake event classifies it.
type pendingBlock struct {
	timeNS uint64
	cpuNS  uint64
	reason string
	loc    source.Loc
}

// gstate accumulates one goroutine's extracted operation stream.
type gstate struct {
	id       uint64
	order    int // first-seen order, for deterministic thread numbering
	fn       string
	ops      []op
	running  bool
	everRan  bool
	runStart uint64
	cpuNS    uint64 // burst accumulated since the last op
	blocked  *pendingBlock
	syscall  *pendingBlock
	creator  uint64 // goroutine that spawned this one; 0 unknown
	created  bool
	dead     bool
}

// objEntry is one synchronization object discovered during conversion.
type objEntry struct {
	kind trace.ObjectKind
	name string
	loc  source.Loc
}

// converter holds the whole-trace conversion state.
type converter struct {
	gs      map[uint64]*gstate
	order   []uint64 // goroutine IDs in first-seen order
	objs    []objEntry
	objIdx  map[string]int
	curG    map[uint64]uint64 // M -> current goroutine, within one generation
	minTick uint64
	freq    uint64
	endNS   uint64
}

// Options configures Convert.
type Options struct {
	// Program names the converted recording; "gotrace" if empty. vppb-serve
	// leaves it empty so equal uploads produce byte-identical predictions.
	Program string
}

// Convert parses a Go runtime execution trace and rebuilds it as a
// 1-CPU/1-LWP vppb recording: goroutines become threads, goroutine state
// transitions become thread-library call events, and block/wake pairs
// become operations on synthesized synchronization objects attributed to
// the blocking source line. The result passes trace.Log Validate; any
// malformed input yields an error, never a panic.
func Convert(data []byte, opts Options) (*trace.Log, error) {
	gens, err := parse(data)
	if err != nil {
		return nil, err
	}
	c := &converter{
		gs:     make(map[uint64]*gstate),
		objIdx: make(map[string]int),
	}
	// Normalize all timestamps against the earliest event of the earliest
	// generation so converted times start near zero.
	first := gens[0]
	if len(first.events) == 0 {
		return nil, fmt.Errorf("gotrace: trace has no timed events")
	}
	c.minTick = first.events[0].tick
	for _, g := range gens {
		c.curG = make(map[uint64]uint64) // M identity restarts per generation
		c.freq = g.freq
		for _, ev := range g.events {
			c.apply(g, ev)
		}
	}
	c.finish()

	log, err := c.layout(opts.Program)
	if err != nil {
		return nil, err
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("gotrace: converted log is inconsistent: %w", err)
	}
	return log, nil
}

// ns converts an absolute tick to nanoseconds since the trace start.
func (c *converter) ns(tick uint64) uint64 {
	if tick <= c.minTick {
		return 0
	}
	return uint64(float64(tick-c.minTick) * (1e9 / float64(c.freq)))
}

// g returns the state of a goroutine, creating it on first sight.
func (c *converter) g(id uint64) *gstate {
	if gs, ok := c.gs[id]; ok {
		return gs
	}
	gs := &gstate{id: id, order: len(c.order)}
	c.gs[id] = gs
	c.order = append(c.order, id)
	return gs
}

// cur returns the goroutine currently on M m, or nil if unknown (the trace
// can legitimately name Ms we have no GoStart for, e.g. the sysmon thread).
func (c *converter) cur(m uint64) *gstate {
	id, ok := c.curG[m]
	if !ok {
		return nil
	}
	return c.g(id)
}

// checkpoint folds running time up to now into the goroutine's pending
// CPU burst.
func (c *converter) checkpoint(gs *gstate, nowNS uint64) {
	if gs.running && nowNS > gs.runStart {
		gs.cpuNS += nowNS - gs.runStart
	}
	gs.runStart = nowNS
}

// take consumes the accumulated burst.
func (gs *gstate) take() uint64 {
	v := gs.cpuNS
	gs.cpuNS = 0
	return v
}

// site picks the application-level frame of a stack: the first frame not
// inside the runtime or the standard synchronization wrappers, else the
// outermost frame. File paths are reduced to their last two components so
// converted logs do not depend on the capture machine's filesystem.
func (c *converter) site(g *generation, stackID uint64) source.Loc {
	frames := g.stacks[stackID]
	if len(frames) == 0 {
		return source.Loc{}
	}
	chosen := frames[len(frames)-1]
	for _, f := range frames {
		if !runtimeFrame(g.stringAt(f.fn)) {
			chosen = f
			break
		}
	}
	return source.Loc{
		File: source.Base(g.stringAt(chosen.file)),
		Line: int(chosen.line),
		Func: g.stringAt(chosen.fn),
	}
}

func runtimeFrame(fn string) bool {
	for _, p := range []string{"runtime.", "runtime/", "sync.", "time.", "syscall.", "os.", "internal/poll.", "net.", "internal/"} {
		if len(fn) >= len(p) && fn[:len(p)] == p {
			return true
		}
	}
	return fn == ""
}

// object interns a synchronization object keyed by namespace (sync vs
// device), block reason and source site.
func (c *converter) object(ns, reason string, loc source.Loc, kind trace.ObjectKind) int {
	label, _ := reasonLabel(reason)
	key := ns + "\x00" + reason + "\x00" + loc.String()
	if i, ok := c.objIdx[key]; ok {
		return i
	}
	name := label
	if !loc.IsZero() {
		name = fmt.Sprintf("%s@%s", label, loc)
	}
	c.objs = append(c.objs, objEntry{kind: kind, name: name, loc: loc})
	i := len(c.objs) - 1
	c.objIdx[key] = i
	return i
}

func (c *converter) syncObject(reason string, loc source.Loc) int {
	_, kind := reasonLabel(reason)
	if kind == trace.ObjDevice {
		kind = trace.ObjSema
	}
	return c.object("sync", reason, loc, kind)
}

func (c *converter) devObject(reason string, loc source.Loc) int {
	return c.object("dev", reason, loc, trace.ObjDevice)
}

// apply advances the state machine by one wire event.
func (c *converter) apply(g *generation, ev wireEvent) {
	now := c.ns(ev.tick)
	if now > c.endNS {
		c.endNS = now
	}
	switch ev.typ {
	case evGoCreate, evGoCreateBlocked:
		child := c.g(ev.args[0])
		child.fn = topFunc(g, ev.args[1])
		if creator := c.cur(ev.m); creator != nil {
			c.checkpoint(creator, now)
			creator.ops = append(creator.ops, op{
				kind: opCreate, timeNS: now, cpuNS: creator.take(), obj: -1,
				target: ev.args[0], loc: c.site(g, ev.args[2]),
			})
			child.creator, child.created = creator.id, true
		}
		if ev.typ == evGoCreateBlocked {
			child.blocked = &pendingBlock{timeNS: now}
		}

	case evGoCreateSyscall:
		c.g(ev.args[0]) // cgo callback goroutine; existence only

	case evGoStart:
		gs := c.g(ev.args[0])
		c.curG[ev.m] = gs.id
		gs.running, gs.everRan = true, true
		gs.runStart = now

	case evGoStatus, evGoStatusStack:
		gs := c.g(ev.args[0])
		switch ev.args[2] {
		case goRunning:
			c.curG[ev.args[1]] = gs.id
			if !gs.running {
				gs.running, gs.runStart = true, now
			}
			gs.everRan = true
		case goSyscall:
			c.curG[ev.args[1]] = gs.id
			if gs.syscall == nil {
				gs.syscall = &pendingBlock{timeNS: now, reason: "syscall"}
			}
			gs.everRan = true
		case goWaiting:
			if gs.blocked == nil {
				gs.blocked = &pendingBlock{timeNS: now}
			}
		}

	case evGoBlock:
		if gs := c.cur(ev.m); gs != nil {
			c.checkpoint(gs, now)
			gs.running = false
			gs.blocked = &pendingBlock{
				timeNS: now, cpuNS: gs.take(),
				reason: g.stringAt(ev.args[0]), loc: c.site(g, ev.args[1]),
			}
			delete(c.curG, ev.m)
		}

	case evGoStop:
		if gs := c.cur(ev.m); gs != nil {
			c.checkpoint(gs, now)
			gs.running = false
			gs.ops = append(gs.ops, op{kind: opYield, timeNS: now, cpuNS: gs.take(), obj: -1, loc: c.site(g, ev.args[1])})
			delete(c.curG, ev.m)
		}

	case evGoDestroy, evGoDestroySyscall:
		if gs := c.cur(ev.m); gs != nil {
			c.checkpoint(gs, now)
			gs.running = false
			gs.ops = append(gs.ops, op{kind: opExit, timeNS: now, cpuNS: gs.take(), obj: -1})
			gs.dead = true
			delete(c.curG, ev.m)
		}

	case evGoUnblock:
		target := c.g(ev.args[0])
		if target.blocked == nil {
			return
		}
		b := target.blocked
		target.blocked = nil
		waker := c.cur(ev.m)
		if depReasons[b.reason] && waker != nil && waker.id != target.id {
			obj := c.syncObject(b.reason, b.loc)
			target.ops = append(target.ops, op{kind: opWait, timeNS: b.timeNS, cpuNS: b.cpuNS, obj: obj, loc: b.loc})
			c.checkpoint(waker, now)
			waker.ops = append(waker.ops, op{kind: opPost, timeNS: now, cpuNS: waker.take(), obj: obj, loc: c.site(g, ev.args[2])})
		} else {
			dur := uint64(0)
			if now > b.timeNS {
				dur = now - b.timeNS
			}
			obj := c.devObject(b.reason, b.loc)
			target.ops = append(target.ops, op{kind: opIO, timeNS: b.timeNS, cpuNS: b.cpuNS, durNS: dur, obj: obj, loc: b.loc})
		}

	case evGoSyscallBegin:
		if gs := c.cur(ev.m); gs != nil {
			c.checkpoint(gs, now)
			gs.running = false
			gs.syscall = &pendingBlock{timeNS: now, cpuNS: gs.take(), reason: "syscall", loc: c.site(g, ev.args[1])}
		}

	case evGoSyscallEnd, evGoSyscallEndBlock:
		if gs := c.cur(ev.m); gs != nil && gs.syscall != nil {
			s := gs.syscall
			gs.syscall = nil
			dur := uint64(0)
			if now > s.timeNS {
				dur = now - s.timeNS
			}
			gs.ops = append(gs.ops, op{kind: opIO, timeNS: s.timeNS, cpuNS: s.cpuNS, durNS: dur, obj: c.devObject("syscall", s.loc), loc: s.loc})
			if ev.typ == evGoSyscallEnd {
				gs.running, gs.runStart = true, now
			} else {
				delete(c.curG, ev.m) // lost its P; a later GoStart resumes it
			}
		}

	case evGoSwitch, evGoSwitchDestroy:
		if old := c.cur(ev.m); old != nil {
			c.checkpoint(old, now)
			old.running = false
			kind := opYield
			if ev.typ == evGoSwitchDestroy {
				kind = opExit
				old.dead = true
			}
			old.ops = append(old.ops, op{kind: kind, timeNS: now, cpuNS: old.take(), obj: -1})
		}
		next := c.g(ev.args[0])
		next.blocked = nil // coroutine switches wake without GoUnblock
		c.curG[ev.m] = next.id
		next.running, next.everRan = true, true
		next.runStart = now
	}
	// Proc, GC, STW, heap and user-annotation events carry no thread-model
	// information for the converted log and are deliberately ignored.
}

// topFunc names the entry function of a goroutine-start stack.
func topFunc(g *generation, stackID uint64) string {
	frames := g.stacks[stackID]
	if len(frames) == 0 {
		return ""
	}
	return g.stringAt(frames[0].fn)
}

// finish closes every live goroutine at the end of the trace: running and
// runnable goroutines get a final thr_exit carrying their residual CPU;
// goroutines still blocked keep their truncated stream (their unresolved
// wait is dropped as unknowable).
func (c *converter) finish() {
	for _, id := range c.order {
		gs := c.gs[id]
		if gs.dead || gs.blocked != nil || gs.syscall != nil {
			continue
		}
		if !gs.everRan && len(gs.ops) == 0 {
			continue
		}
		c.checkpoint(gs, c.endNS)
		gs.ops = append(gs.ops, op{kind: opExit, timeNS: c.endNS, cpuNS: gs.take(), obj: -1})
	}
}
