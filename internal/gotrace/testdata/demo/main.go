// Command demo is the tiny mutex/channel program behind the committed
// Go runtime trace fixture. Regenerate the fixture with:
//
//	cd internal/gotrace/testdata/demo
//	go run main.go            # writes ../go-mutexchan.trace
//
// The program exercises exactly the behaviours the gotrace frontend
// claims to convert: goroutine creation and exit, mutex contention
// (sync.Mutex under deliberate spin), channel sends and receives on an
// unbuffered channel, a select with two live cases, a short sleep, and a
// WaitGroup join — all on GOMAXPROCS(2) so the trace contains real
// parallelism for the predictor to rediscover.
package main

import (
	"os"
	"runtime"
	"runtime/trace"
	"sync"
	"time"
)

// spin burns CPU so goroutines hold the mutex long enough to contend.
func spin(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i
	}
	return s
}

func main() {
	runtime.GOMAXPROCS(2)
	f, err := os.Create("../go-mutexchan.trace")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := trace.Start(f); err != nil {
		panic(err)
	}
	defer trace.Stop()

	var mu sync.Mutex
	counter := 0
	ch := make(chan int)
	done := make(chan struct{})

	var wg sync.WaitGroup
	// Two workers contend on the mutex.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				mu.Lock()
				counter += spin(20000)
				mu.Unlock()
				spin(5000)
			}
		}()
	}
	// A producer feeds an unbuffered channel; the consumer selects on it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			spin(10000)
			ch <- i
		}
		close(done)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case v := <-ch:
				counter += v + spin(8000)
			case <-done:
				return
			}
		}
	}()

	time.Sleep(2 * time.Millisecond)
	wg.Wait()
	mu.Lock()
	_ = counter
	mu.Unlock()
}
