package gotrace

import (
	"fmt"
	"sort"

	"vppb/internal/trace"
	"vppb/internal/vtime"
)

// This file lays the extracted per-goroutine operation streams out as a
// single uni-processor recording — the only input shape BuildProfile
// accepts. Operations replay in original-run time order on one virtual
// CPU; the burst preceding each operation becomes the inter-event gap the
// profile reconstruction attributes back to the emitting thread.

// laidThread is one kept goroutine during layout.
type laidThread struct {
	gs      *gstate
	tid     trace.ThreadID
	idx     int
	started bool
	waiting *op // the blocked sema_wait whose After is still pending
}

// layout converts the accumulated goroutine streams to a trace.Log.
func (c *converter) layout(program string) (*trace.Log, error) {
	if program == "" {
		program = "gotrace"
	}

	// The main goroutine anchors the converted process: Go numbers it 1;
	// in a truncated trace fall back to the lowest goroutine seen.
	if len(c.order) == 0 {
		return nil, fmt.Errorf("gotrace: trace shows no goroutine activity")
	}
	mainID, ok := uint64(1), false
	if _, ok = c.gs[mainID]; !ok {
		mainID = c.order[0]
		for _, id := range c.order {
			if id < mainID {
				mainID = id
			}
		}
	}

	// Keep goroutines that contributed operations, plus main. Everything
	// else (idle runtime helpers, goroutines blocked for the whole
	// recording) is dropped, and creates pointing at dropped goroutines
	// are folded away so their creator's CPU time survives.
	keep := make(map[uint64]bool)
	for _, id := range c.order {
		if len(c.gs[id].ops) > 0 || id == mainID {
			keep[id] = true
		}
	}
	for _, id := range c.order {
		if !keep[id] {
			continue
		}
		gs := c.gs[id]
		kept := gs.ops[:0]
		var carry uint64
		for _, o := range gs.ops {
			if o.kind == opCreate && !keep[o.target] {
				carry += o.cpuNS
				continue
			}
			o.cpuNS += carry
			carry = 0
			kept = append(kept, o)
		}
		if carry > 0 {
			// Creates at the very end of the stream: keep the burst as a
			// yield so no CPU time silently disappears.
			kept = append(kept, op{kind: opYield, timeNS: c.endNS, cpuNS: carry, obj: -1})
		}
		gs.ops = kept
	}

	// Thread numbering: main is 1, everything else 4, 5, ... in
	// first-seen order, mirroring the Solaris convention.
	threads := []*laidThread{}
	byID := make(map[uint64]*laidThread)
	next := trace.FirstDynamicThread
	for _, id := range c.order {
		if !keep[id] {
			continue
		}
		lt := &laidThread{gs: c.gs[id]}
		if id == mainID {
			lt.tid, lt.started = trace.MainThread, true
		} else {
			lt.tid = next
			next++
		}
		threads = append(threads, lt)
		byID[id] = lt
	}

	// Goroutines whose creator is unknown or dropped are adopted by main:
	// a synthesized create at the start of the recording.
	var adopted []op
	for _, lt := range threads {
		gs := lt.gs
		if lt.tid == trace.MainThread {
			continue
		}
		if gs.created && keep[gs.creator] {
			continue
		}
		adopted = append(adopted, op{kind: opCreate, timeNS: 0, obj: -1, target: gs.id})
	}
	sort.SliceStable(adopted, func(i, j int) bool { return byID[adopted[i].target].tid < byID[adopted[j].target].tid })
	main := byID[mainID]
	main.gs.ops = append(adopted, main.gs.ops...)

	l := &trace.Log{
		Header: trace.Header{Program: program, CPUs: 1, LWPs: 1},
	}
	for _, lt := range threads {
		name := fmt.Sprintf("g%d", lt.gs.id)
		if lt.tid == trace.MainThread {
			name = "main"
		}
		l.Threads = append(l.Threads, trace.ThreadInfo{
			ID: lt.tid, Name: name, Func: lt.gs.fn, BoundCPU: -1,
		})
	}
	for i, o := range c.objs {
		l.Objects = append(l.Objects, trace.ObjectInfo{
			ID: trace.ObjectID(i + 1), Kind: o.kind, Name: o.name,
		})
	}

	var (
		seq    int64
		nowNS  uint64
		counts = make(map[int]int)
		fifo   = make(map[int][]*laidThread)
	)
	emit := func(tid trace.ThreadID, class trace.EventClass, o *op, timeout vtime.Duration) {
		call := map[opKind]trace.Call{
			opCreate: trace.CallThrCreate,
			opWait:   trace.CallSemaWait,
			opPost:   trace.CallSemaPost,
			opIO:     trace.CallIO,
			opYield:  trace.CallThrYield,
			opExit:   trace.CallThrExit,
		}[o.kind]
		ev := trace.Event{
			Seq:     seq,
			Time:    vtime.Time(nowNS / 1000),
			Thread:  tid,
			Class:   class,
			Call:    call,
			Timeout: timeout,
			Loc:     o.loc,
		}
		if o.obj >= 0 {
			ev.Object = trace.ObjectID(o.obj + 1)
		}
		if o.kind == opCreate {
			ev.Target = byID[o.target].tid
		}
		seq++
		l.Events = append(l.Events, ev)
	}

	for {
		var pick *laidThread
		for _, lt := range threads {
			if !lt.started || lt.waiting != nil || lt.idx >= len(lt.gs.ops) {
				continue
			}
			if pick == nil || lt.gs.ops[lt.idx].timeNS < pick.gs.ops[pick.idx].timeNS {
				pick = lt
			}
		}
		if pick == nil {
			break
		}
		o := pick.gs.ops[pick.idx]
		pick.idx++
		nowNS += o.cpuNS
		switch o.kind {
		case opCreate:
			emit(pick.tid, trace.Before, &o, 0)
			emit(pick.tid, trace.After, &o, 0)
			byID[o.target].started = true
		case opYield:
			emit(pick.tid, trace.Before, &o, 0)
			emit(pick.tid, trace.After, &o, 0)
		case opExit:
			emit(pick.tid, trace.Before, &o, 0)
		case opWait:
			emit(pick.tid, trace.Before, &o, 0)
			if counts[o.obj] > 0 {
				counts[o.obj]--
				emit(pick.tid, trace.After, &o, 0)
			} else {
				held := o
				pick.waiting = &held
				fifo[o.obj] = append(fifo[o.obj], pick)
			}
		case opPost:
			emit(pick.tid, trace.Before, &o, 0)
			emit(pick.tid, trace.After, &o, 0)
			if q := fifo[o.obj]; len(q) > 0 {
				w := q[0]
				fifo[o.obj] = q[1:]
				emit(w.tid, trace.After, w.waiting, 0)
				w.waiting = nil
			} else {
				counts[o.obj]++
			}
		case opIO:
			timeout := vtime.Duration(o.durNS / 1000)
			emit(pick.tid, trace.Before, &o, timeout)
			nowNS += o.durNS
			emit(pick.tid, trace.After, &o, timeout)
		}
	}
	for _, lt := range threads {
		if lt.idx < len(lt.gs.ops) || lt.waiting != nil {
			return nil, fmt.Errorf("gotrace: goroutine %d (thread %d) has unschedulable operations: trace wake/block pairing is inconsistent", lt.gs.id, lt.tid)
		}
	}
	l.Header.End = vtime.Time(nowNS / 1000)
	return l, nil
}
