package gotrace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"regexp"
	"sort"
)

// This file is a self-contained reader for the Go runtime execution trace
// wire format, version 22/23 (Go 1.22 and later; Go 1.23 only adds event
// types to the same framing). The format is documented by the runtime's
// trace writer: a text header, then a stream of per-M batches, each a
// varint-framed byte run holding either timed scheduling events, the
// generation's string table, its stack table, CPU profile samples or the
// tick frequency. We parse it directly instead of importing
// golang.org/x/exp/trace so the module keeps zero external dependencies.

// headerRe matches the trace file header: "go 1.<minor> trace\x00\x00\x00".
var headerRe = regexp.MustCompile(`^go 1\.(\d+) trace\x00\x00\x00`)

// Sniff reports whether data begins with a Go execution trace header (any
// version; Convert separately rejects versions it cannot decode).
func Sniff(data []byte) bool {
	return headerRe.Match(data)
}

// Wire format event types (version 22/23 numbering).
const (
	evEventBatch        = 1
	evStacks            = 2
	evStack             = 3
	evStrings           = 4
	evString            = 5
	evCPUSamples        = 6
	evCPUSample         = 7
	evFrequency         = 8
	evProcsChange       = 9
	evProcStart         = 10
	evProcStop          = 11
	evProcSteal         = 12
	evProcStatus        = 13
	evGoCreate          = 14
	evGoCreateSyscall   = 15
	evGoStart           = 16
	evGoDestroy         = 17
	evGoDestroySyscall  = 18
	evGoStop            = 19
	evGoBlock           = 20
	evGoUnblock         = 21
	evGoSyscallBegin    = 22
	evGoSyscallEnd      = 23
	evGoSyscallEndBlock = 24
	evGoStatus          = 25
	evSTWBegin          = 26
	evSTWEnd            = 27
	evGCActive          = 28
	evGCBegin           = 29
	evGCEnd             = 30
	evGCSweepActive     = 31
	evGCSweepBegin      = 32
	evGCSweepEnd        = 33
	evGCMarkAssistActiv = 34
	evGCMarkAssistBegin = 35
	evGCMarkAssistEnd   = 36
	evHeapAlloc         = 37
	evHeapGoal          = 38
	evGoLabel           = 39
	evUserTaskBegin     = 40
	evUserTaskEnd       = 41
	evUserRegionBegin   = 42
	evUserRegionEnd     = 43
	evUserLog           = 44
	evGoSwitch          = 45
	evGoSwitchDestroy   = 46
	evGoCreateBlocked   = 47
	evGoStatusStack     = 48
	evExperimentalBatch = 49

	numWireEvents = 50
)

// Limits mirroring the runtime's own writer, so a corrupt length field
// cannot make the parser allocate unbounded memory.
const (
	maxBatchSize      = 64 << 10
	maxFramesPerStack = 128
	maxStringSize     = 1 << 10
)

// timedArgs gives, for each timed event type, the total uvarint argument
// count including the leading dt. Zero means the type is not a timed event
// and must not appear inside an event batch.
var timedArgs = [numWireEvents]int{
	evProcsChange:       3,
	evProcStart:         3,
	evProcStop:          1,
	evProcSteal:         4,
	evProcStatus:        3,
	evGoCreate:          4,
	evGoCreateSyscall:   2,
	evGoStart:           3,
	evGoDestroy:         1,
	evGoDestroySyscall:  1,
	evGoStop:            3,
	evGoBlock:           3,
	evGoUnblock:         4,
	evGoSyscallBegin:    3,
	evGoSyscallEnd:      1,
	evGoSyscallEndBlock: 1,
	evGoStatus:          4,
	evSTWBegin:          3,
	evSTWEnd:            1,
	evGCActive:          2,
	evGCBegin:           3,
	evGCEnd:             2,
	evGCSweepActive:     2,
	evGCSweepBegin:      2,
	evGCSweepEnd:        3,
	evGCMarkAssistActiv: 2,
	evGCMarkAssistBegin: 2,
	evGCMarkAssistEnd:   1,
	evHeapAlloc:         2,
	evHeapGoal:          2,
	evGoLabel:           2,
	evUserTaskBegin:     5,
	evUserTaskEnd:       3,
	evUserRegionBegin:   4,
	evUserRegionEnd:     4,
	evUserLog:           5,
	evGoSwitch:          3,
	evGoSwitchDestroy:   3,
	evGoCreateBlocked:   4,
	evGoStatusStack:     5,
}

// frame is one stack table frame, with its strings resolved lazily
// through the generation's string table.
type frame struct {
	pc       uint64
	fn, file uint64 // string IDs
	line     uint64
}

// wireEvent is one decoded timed event with an absolute tick timestamp.
type wireEvent struct {
	typ  byte
	m    uint64
	tick uint64
	args [4]uint64 // arguments after dt, in spec order
}

// generation groups one trace generation: its tables and its timed
// events merged across all M batches into one deterministic order.
type generation struct {
	gen     uint64
	freq    uint64 // ticks per second
	strings map[uint64]string
	stacks  map[uint64][]frame
	events  []wireEvent
}

// stringAt resolves a string ID, returning "" for unknown IDs (a lossy
// but non-fatal condition: the runtime never emits dangling IDs, but a
// truncated trace may).
func (g *generation) stringAt(id uint64) string { return g.strings[id] }

// parse decodes a complete trace file into its generations, ascending.
func parse(data []byte) ([]*generation, error) {
	hdr := headerRe.FindSubmatch(data)
	if hdr == nil {
		return nil, fmt.Errorf("gotrace: not a Go execution trace (missing \"go 1.N trace\" header)")
	}
	var version int
	fmt.Sscanf(string(hdr[1]), "%d", &version)
	if version < 22 {
		return nil, fmt.Errorf("gotrace: trace version go1.%d predates the self-describing format (need go1.22 or later)", version)
	}
	r := bytes.NewReader(data[len(hdr[0]):])

	gens := make(map[uint64]*generation)
	var order []uint64
	genOf := func(n uint64) *generation {
		g, ok := gens[n]
		if !ok {
			g = &generation{gen: n, strings: make(map[uint64]string), stacks: make(map[uint64][]frame)}
			gens[n] = g
			order = append(order, n)
		}
		return g
	}

	for r.Len() > 0 {
		typ, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("gotrace: reading batch header: %w", err)
		}
		experimental := false
		switch typ {
		case evEventBatch:
		case evExperimentalBatch:
			experimental = true
			if _, err := r.ReadByte(); err != nil {
				return nil, fmt.Errorf("gotrace: reading experiment ID: %w", err)
			}
		default:
			return nil, fmt.Errorf("gotrace: expected batch header, got event type %d", typ)
		}
		gen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("gotrace: reading batch generation: %w", err)
		}
		m, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("gotrace: reading batch M: %w", err)
		}
		base, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("gotrace: reading batch timestamp: %w", err)
		}
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("gotrace: reading batch size: %w", err)
		}
		if size > maxBatchSize {
			return nil, fmt.Errorf("gotrace: batch size %d exceeds the %d-byte maximum", size, maxBatchSize)
		}
		if uint64(r.Len()) < size {
			return nil, fmt.Errorf("gotrace: truncated batch: want %d bytes, have %d", size, r.Len())
		}
		batch := make([]byte, size)
		r.Read(batch)
		if experimental {
			continue // opaque experiment data (alloc/free etc.); irrelevant here
		}
		if err := parseBatch(genOf(gen), m, base, batch); err != nil {
			return nil, err
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("gotrace: trace contains no batches")
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]*generation, 0, len(order))
	for _, n := range order {
		g := gens[n]
		if g.freq == 0 {
			return nil, fmt.Errorf("gotrace: generation %d has no frequency batch", n)
		}
		// A stable sort on tick time keeps the file order for ties, which
		// preserves each M's per-batch event order — the property the
		// converter's per-M goroutine tracking relies on.
		sort.SliceStable(g.events, func(i, j int) bool { return g.events[i].tick < g.events[j].tick })
		out = append(out, g)
	}
	return out, nil
}

// parseBatch decodes one batch's payload into the generation's tables or
// event list, depending on the batch's leading event type.
func parseBatch(g *generation, m, base uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	r := bytes.NewReader(data)
	switch data[0] {
	case evStrings:
		return parseStrings(g, r)
	case evStacks:
		return parseStacks(g, r)
	case evCPUSamples:
		return nil // profile samples carry no scheduling information
	case evFrequency:
		r.ReadByte()
		f, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: reading frequency: %w", err)
		}
		if f == 0 {
			return fmt.Errorf("gotrace: zero tick frequency")
		}
		g.freq = f
		return nil
	default:
		return parseEvents(g, m, base, r)
	}
}

func parseStrings(g *generation, r *bytes.Reader) error {
	r.ReadByte() // evStrings marker
	for r.Len() > 0 {
		typ, _ := r.ReadByte()
		if typ != evString {
			return fmt.Errorf("gotrace: strings batch holds event type %d", typ)
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: reading string ID: %w", err)
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: reading string length: %w", err)
		}
		if n > maxStringSize {
			return fmt.Errorf("gotrace: string of %d bytes exceeds the %d-byte maximum", n, maxStringSize)
		}
		if uint64(r.Len()) < n {
			return fmt.Errorf("gotrace: truncated string: want %d bytes, have %d", n, r.Len())
		}
		buf := make([]byte, n)
		r.Read(buf)
		g.strings[id] = string(buf)
	}
	return nil
}

func parseStacks(g *generation, r *bytes.Reader) error {
	r.ReadByte() // evStacks marker
	for r.Len() > 0 {
		typ, _ := r.ReadByte()
		if typ != evStack {
			return fmt.Errorf("gotrace: stacks batch holds event type %d", typ)
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: reading stack ID: %w", err)
		}
		nframes, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: reading frame count: %w", err)
		}
		if nframes > maxFramesPerStack {
			return fmt.Errorf("gotrace: stack of %d frames exceeds the %d-frame maximum", nframes, maxFramesPerStack)
		}
		frames := make([]frame, 0, nframes)
		for i := uint64(0); i < nframes; i++ {
			var f frame
			var err error
			if f.pc, err = binary.ReadUvarint(r); err == nil {
				if f.fn, err = binary.ReadUvarint(r); err == nil {
					if f.file, err = binary.ReadUvarint(r); err == nil {
						f.line, err = binary.ReadUvarint(r)
					}
				}
			}
			if err != nil {
				return fmt.Errorf("gotrace: truncated stack frame: %w", err)
			}
			frames = append(frames, f)
		}
		g.stacks[id] = frames
	}
	return nil
}

// parseEvents decodes a batch of timed events, accumulating each event's
// dt delta onto the batch's base timestamp.
func parseEvents(g *generation, m, base uint64, r *bytes.Reader) error {
	tick := base
	for r.Len() > 0 {
		typ, _ := r.ReadByte()
		if int(typ) >= numWireEvents || timedArgs[typ] == 0 {
			return fmt.Errorf("gotrace: unexpected event type %d in event batch", typ)
		}
		nargs := timedArgs[typ]
		dt, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("gotrace: truncated event %d: %w", typ, err)
		}
		tick += dt
		ev := wireEvent{typ: typ, m: m, tick: tick}
		for i := 0; i < nargs-1; i++ {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("gotrace: truncated event %d argument: %w", typ, err)
			}
			ev.args[i] = v
		}
		g.events = append(g.events, ev)
	}
	return nil
}
