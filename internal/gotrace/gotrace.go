// Package gotrace is the second ingestion frontend of the predictor: it
// reads Go runtime execution traces (the format written by runtime/trace
// and consumed by `go tool trace`) and rebuilds them as vppb recordings,
// so every analysis in this repository — prediction sweeps, happens-before
// bounds, lock-order analysis, timelines — runs against real Go programs
// instead of only the built-in threadlib workloads.
//
// The mapping (detailed in DESIGN.md):
//
//	goroutine                    -> thread (main goroutine = thread 1)
//	GoCreate                     -> thr_create
//	GoBlock+GoUnblock (sync,
//	  chan send/receive, select) -> sema_wait / sema_post on an object
//	                                synthesized per (reason, source site)
//	GoBlock+GoUnblock (sleep,
//	  network, ...), syscalls    -> io against a FIFO device
//	GoStop (preemption)          -> thr_yield
//	GoDestroy                    -> thr_exit
//
// The parser is self-contained (no golang.org/x/exp/trace dependency) and
// reads trace versions go1.22 and go1.23. Malformed or truncated inputs
// yield an error, never a panic; FuzzConvert enforces this.
package gotrace
