package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChromeTraceExport(t *testing.T) {
	path := fixtureLog(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-chrometrace", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "wrote "+out) {
		t.Errorf("no confirmation on stderr: %s", errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
}

// TestChromeTraceFromGoTrace pipes the whole path end to end: a Go
// runtime trace in, a Chrome viewer file of the predicted schedule out.
func TestChromeTraceFromGoTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	_, _, err := runCmd(t,
		"-log", "../../internal/gotrace/testdata/go-mutexchan.trace",
		"-format", "gotrace", "-cpus", "4", "-chrometrace", out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("export is not valid JSON")
	}
	if !strings.Contains(string(data), "main.main.func1") {
		t.Error("export does not name the traced program's goroutines")
	}
}

func TestChromeTraceUnwritablePath(t *testing.T) {
	path := fixtureLog(t)
	if _, _, err := runCmd(t, "-log", path, "-cpus", "2",
		"-chrometrace", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json")); err == nil {
		t.Fatal("unwritable -chrometrace path accepted")
	}
}
