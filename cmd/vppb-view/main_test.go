package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

func fixtureLog(t *testing.T) string {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "example.bin")
	if err := vppb.WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestRenderGraphs(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-width", "60", "-lanes")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parallelism", "execution flow", "thr_a", "CPU lanes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingInputs(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("no input accepted")
	}
	if _, _, err := runCmd(t, "-log", "/nonexistent"); err == nil {
		t.Fatal("unreadable log accepted")
	}
	if _, _, err := runCmd(t, "-timeline", "/nonexistent"); err == nil {
		t.Fatal("unreadable timeline accepted")
	}
}

func TestWindowAndThreads(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2",
		"-window", "0.01,0.05", "-threads", "4,5", "-zoom", "1", "-compress")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "main") {
		t.Fatalf("thread selection ignored:\n%s", out)
	}
	for _, bad := range [][]string{
		{"-window", "zzz"},
		{"-window", "5,1"},
		{"-window", "a,b"},
		{"-threads", "4,x"},
	} {
		args := append([]string{"-log", path, "-cpus", "2"}, bad...)
		if _, _, err := runCmd(t, args...); err == nil {
			t.Errorf("bad args %v accepted", bad)
		}
	}
}

func TestInspectWithSource(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-inspect", "1", "-at", "0.1", "-source")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Thread:    T1", "Event:", "Source:"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	if _, _, err := runCmd(t, "-log", path, "-inspect", "99"); err == nil {
		t.Fatal("inspecting unknown thread accepted")
	}
}

func TestSVGAndHTMLFiles(t *testing.T) {
	path := fixtureLog(t)
	dir := t.TempDir()
	svg := filepath.Join(dir, "x.svg")
	html := filepath.Join(dir, "x.html")
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-svg", svg, "-html", html)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(errOut, "wrote") != 2 {
		t.Fatalf("stderr = %q", errOut)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil || !strings.Contains(string(svgData), "<svg") {
		t.Fatalf("bad svg: %v", err)
	}
	htmlData, err := os.ReadFile(html)
	if err != nil || !strings.Contains(string(htmlData), "<!DOCTYPE html>") {
		t.Fatalf("bad html: %v", err)
	}
}

func TestTimelineInput(t *testing.T) {
	// Produce a timeline via the library, store it, view it.
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vppb.Simulate(log, vppb.Machine{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := vppb.MarshalTimeline(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.tl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, "-timeline", path, "-width", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution flow") {
		t.Fatalf("timeline view failed:\n%s", out)
	}
}

func corruptLog(t *testing.T) string {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := vppb.CorruptLog(log, "truncate", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.log")
	if err := vppb.WriteLog(path, bad); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptLogRepairedByDefault(t *testing.T) {
	path := corruptLog(t)
	out, errOut, err := runCmd(t, "-log", path, "-cpus", "2")
	if err != nil {
		t.Fatalf("graceful degradation failed: %v", err)
	}
	if !strings.Contains(errOut, "corrupt log repaired") {
		t.Fatalf("stderr lacks the repair note:\n%s", errOut)
	}
	if !strings.Contains(out, "execution flow") {
		t.Fatalf("no graphs rendered:\n%s", out)
	}
}

func TestRepairFlagPrintsReport(t *testing.T) {
	path := corruptLog(t)
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-repair")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "repair:") || !strings.Contains(errOut, "[synthesize-afters]") {
		t.Fatalf("stderr lacks the full repair report:\n%s", errOut)
	}
}

func TestStrictRejectsCorrupt(t *testing.T) {
	path := corruptLog(t)
	_, _, err := runCmd(t, "-log", path, "-cpus", "2", "-strict")
	if err == nil || !strings.Contains(err.Error(), "corrupt log") || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v", err)
	}
	if code := exitCode(err); code != 1 {
		t.Fatalf("a corrupt log is a runtime failure: exitCode = %d, want 1", code)
	}
}

func TestStrictAcceptsClean(t *testing.T) {
	path := fixtureLog(t)
	if _, _, err := runCmd(t, "-log", path, "-cpus", "2", "-strict"); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrorsExitStatusTwo(t *testing.T) {
	path := fixtureLog(t)
	for _, args := range [][]string{
		{},
		{"-log", path, "-strict", "-repair"},
		{"-log", path, "-window", "zzz"},
		{"-log", path, "-window", "a,b"},
		{"-log", path, "-threads", "4,x"},
		{"-no-such-flag"},
		{"-log", path, "stray-arg"},
	} {
		_, _, err := runCmd(t, args...)
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("args %v: exitCode = %d, want 2", args, code)
		}
	}
	// Runtime failures still exit 1.
	_, _, err := runCmd(t, "-log", "/no/such/file.log")
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("missing file: err = %v, exitCode = %d; want exit 1", err, exitCode(err))
	}
}

// TestMainExitCode re-executes the test binary as the real command to
// assert the process-level contract: exit status 1 for runtime failures
// and a one-line diagnostic naming the offending file.
func TestMainExitCode(t *testing.T) {
	if os.Getenv("VPPB_VIEW_MAIN_TEST") == "1" {
		os.Args = []string{"vppb-view", "-log", "/no/such/file.log"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCode")
	cmd.Env = append(os.Environ(), "VPPB_VIEW_MAIN_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(string(out), "vppb-view:") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}

// TestMainExitCodeUsageError re-executes the binary with no input flags
// to assert the process-level contract: exit status 2 for usage errors.
func TestMainExitCodeUsageError(t *testing.T) {
	if os.Getenv("VPPB_VIEW_USAGE_TEST") == "1" {
		os.Args = []string{"vppb-view"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCodeUsageError")
	cmd.Env = append(os.Environ(), "VPPB_VIEW_USAGE_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a usage error", code)
	}
	if !strings.Contains(string(out), "need -log or -timeline") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}
