package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

func fixtureLog(t *testing.T) string {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "example.bin")
	if err := vppb.WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestRenderGraphs(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-width", "60", "-lanes")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parallelism", "execution flow", "thr_a", "CPU lanes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingInputs(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("no input accepted")
	}
	if _, _, err := runCmd(t, "-log", "/nonexistent"); err == nil {
		t.Fatal("unreadable log accepted")
	}
	if _, _, err := runCmd(t, "-timeline", "/nonexistent"); err == nil {
		t.Fatal("unreadable timeline accepted")
	}
}

func TestWindowAndThreads(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2",
		"-window", "0.01,0.05", "-threads", "4,5", "-zoom", "1", "-compress")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "main") {
		t.Fatalf("thread selection ignored:\n%s", out)
	}
	for _, bad := range [][]string{
		{"-window", "zzz"},
		{"-window", "5,1"},
		{"-window", "a,b"},
		{"-threads", "4,x"},
	} {
		args := append([]string{"-log", path, "-cpus", "2"}, bad...)
		if _, _, err := runCmd(t, args...); err == nil {
			t.Errorf("bad args %v accepted", bad)
		}
	}
}

func TestInspectWithSource(t *testing.T) {
	path := fixtureLog(t)
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-inspect", "1", "-at", "0.1", "-source")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Thread:    T1", "Event:", "Source:"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	if _, _, err := runCmd(t, "-log", path, "-inspect", "99"); err == nil {
		t.Fatal("inspecting unknown thread accepted")
	}
}

func TestSVGAndHTMLFiles(t *testing.T) {
	path := fixtureLog(t)
	dir := t.TempDir()
	svg := filepath.Join(dir, "x.svg")
	html := filepath.Join(dir, "x.html")
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-svg", svg, "-html", html)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(errOut, "wrote") != 2 {
		t.Fatalf("stderr = %q", errOut)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil || !strings.Contains(string(svgData), "<svg") {
		t.Fatalf("bad svg: %v", err)
	}
	htmlData, err := os.ReadFile(html)
	if err != nil || !strings.Contains(string(htmlData), "<!DOCTYPE html>") {
		t.Fatalf("bad html: %v", err)
	}
}

func TestTimelineInput(t *testing.T) {
	// Produce a timeline via the library, store it, view it.
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vppb.Simulate(log, vppb.Machine{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := vppb.MarshalTimeline(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.tl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, "-timeline", path, "-width", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution flow") {
		t.Fatalf("timeline view failed:\n%s", out)
	}
}
