// Command vppb-view renders the Visualizer's graphs for a predicted
// execution: the parallelism graph and the execution flow graph of the
// paper's figure 5 (plus optional per-CPU lanes), as ASCII on stdout and
// optionally as SVG or a self-contained HTML report. It also exposes the
// inspection facilities: event popups, stepping, and source lookup.
//
// Usage:
//
//	vppb-view -log app.log -cpus 8
//	vppb-view -timeline app.tl -svg out.svg -html out.html
//	vppb-view -log app.log -cpus 8 -window 0.5,0.6 -compress -lanes
//	vppb-view -log app.log -cpus 8 -inspect 4 -at 0.25 -source
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vppb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-view:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-view", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath  = fs.String("log", "", "recorded log file (simulated on the machine below)")
		tlPath   = fs.String("timeline", "", "predicted execution written by vppb-sim -timeline (bypasses simulation)")
		cpus     = fs.Int("cpus", 1, "number of processors to simulate")
		lwps     = fs.Int("lwps", 0, "number of LWPs (0 = one per CPU)")
		width    = fs.Int("width", 100, "ASCII graph width in columns")
		maxRows  = fs.Int("maxrows", 0, "cap flow-graph rows (0 = all)")
		window   = fs.String("window", "", "visible interval as start,end in seconds (e.g. 0.5,0.75)")
		zoomIn   = fs.Int("zoom", 0, "zoom in N fine steps (x1.5 each), left edge fixed")
		compress = fs.Bool("compress", false, "hide threads inactive in the window")
		lanes    = fs.Bool("lanes", false, "also draw per-CPU lanes (which thread ran where)")
		threads  = fs.String("threads", "", "comma-separated thread IDs to show (default all)")
		svgPath  = fs.String("svg", "", "also write an SVG rendering to this file")
		htmlPath = fs.String("html", "", "also write a self-contained HTML report to this file")
		inspect  = fs.Int("inspect", 0, "describe the event of thread TID nearest -at")
		at       = fs.Float64("at", 0, "time (seconds) for -inspect")
		showSrc  = fs.Bool("source", false, "with -inspect, print the highlighted source excerpt")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var timeline *vppb.Timeline
	var program string
	switch {
	case *tlPath != "":
		data, err := os.ReadFile(*tlPath)
		if err != nil {
			return err
		}
		timeline, err = vppb.UnmarshalTimeline(data)
		if err != nil {
			return err
		}
		program = timeline.Program
	case *logPath != "":
		log, err := vppb.ReadLog(*logPath)
		if err != nil {
			return err
		}
		res, err := vppb.Simulate(log, vppb.Machine{CPUs: *cpus, LWPs: *lwps})
		if err != nil {
			return err
		}
		timeline = res.Timeline
		program = log.Header.Program
	default:
		return fmt.Errorf("need -log or -timeline")
	}
	view, err := vppb.NewView(timeline)
	if err != nil {
		return err
	}

	if *window != "" {
		lo, hi, ok := strings.Cut(*window, ",")
		if !ok {
			return fmt.Errorf("-window wants start,end")
		}
		start, err1 := strconv.ParseFloat(lo, 64)
		end, err2 := strconv.ParseFloat(hi, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("-window wants numbers, got %q", *window)
		}
		if err := view.SetWindow(
			vppb.Time(start*float64(vppb.Second)),
			vppb.Time(end*float64(vppb.Second))); err != nil {
			return err
		}
	}
	for i := 0; i < *zoomIn; i++ {
		view.ZoomIn(vppb.ZoomFine)
	}
	view.SetCompressed(*compress)
	if *threads != "" {
		var ids []vppb.ThreadID
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("-threads: %v", err)
			}
			ids = append(ids, vppb.ThreadID(n))
		}
		view.SelectThreads(ids...)
	}

	if *inspect != 0 {
		in := vppb.NewInspector(timeline)
		ref, ok := in.At(vppb.ThreadID(*inspect), vppb.Time(*at*float64(vppb.Second)))
		if !ok {
			return fmt.Errorf("thread T%d has no events", *inspect)
		}
		desc, err := in.Describe(ref)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, desc)
		if *showSrc {
			excerpt, err := in.SourceExcerpt(ref, 3)
			if err != nil {
				fmt.Fprintln(stderr, "vppb-view: source:", err)
			} else {
				fmt.Fprintln(stdout)
				fmt.Fprint(stdout, excerpt)
			}
		}
		return nil
	}

	fmt.Fprint(stdout, vppb.RenderASCII(view, vppb.ASCIIOptions{Width: *width, MaxFlowRows: *maxRows}))
	if *lanes {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vppb.RenderCPULanesASCII(view, vppb.ASCIIOptions{Width: *width}))
	}

	if *svgPath != "" {
		svg := vppb.RenderSVG(view, vppb.SVGOptions{
			Title: fmt.Sprintf("%s on %d simulated CPUs", program, timeline.CPUs),
		})
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *svgPath)
	}
	if *htmlPath != "" {
		page, err := vppb.RenderHTML(view, vppb.HTMLOptions{
			Title: fmt.Sprintf("%s on %d simulated CPUs", program, timeline.CPUs),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlPath, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *htmlPath)
	}
	return nil
}
