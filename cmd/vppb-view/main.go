// Command vppb-view renders the Visualizer's graphs for a predicted
// execution: the parallelism graph and the execution flow graph of the
// paper's figure 5 (plus optional per-CPU lanes), as ASCII on stdout and
// optionally as SVG or a self-contained HTML report. It also exposes the
// inspection facilities: event popups, stepping, and source lookup.
//
// Usage:
//
//	vppb-view -log app.log -cpus 8
//	vppb-view -timeline app.tl -svg out.svg -html out.html
//	vppb-view -log app.log -cpus 8 -window 0.5,0.6 -compress -lanes
//	vppb-view -log app.log -cpus 8 -inspect 4 -at 0.25 -source
//	vppb-view -log trace.out -format gotrace -cpus 4 -chrometrace out.json
//	vppb-view -log damaged.log -repair       # print every applied fix
//	vppb-view -log damaged.log -strict       # refuse corrupt input
//
// Like vppb-sim, a structurally invalid log is repaired automatically
// before simulation (a one-line note goes to stderr); -repair prints the
// full repair report and -strict turns any corruption into a hard
// failure.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vppb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-view:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks an invocation mistake (as opposed to a runtime
// failure): the process exits with status 2, the conventional
// bad-command-line code.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// exitCode maps an error from run to a process exit status.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-view", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath  = fs.String("log", "", "recorded log file (simulated on the machine below)")
		format   = fs.String("format", "auto", "input trace format: auto | vppb | gotrace (a Go runtime execution trace)")
		tlPath   = fs.String("timeline", "", "predicted execution written by vppb-sim -timeline (bypasses simulation)")
		cpus     = fs.Int("cpus", 1, "number of processors to simulate")
		lwps     = fs.Int("lwps", 0, "number of LWPs (0 = one per CPU)")
		width    = fs.Int("width", 100, "ASCII graph width in columns")
		maxRows  = fs.Int("maxrows", 0, "cap flow-graph rows (0 = all)")
		window   = fs.String("window", "", "visible interval as start,end in seconds (e.g. 0.5,0.75)")
		zoomIn   = fs.Int("zoom", 0, "zoom in N fine steps (x1.5 each), left edge fixed")
		compress = fs.Bool("compress", false, "hide threads inactive in the window")
		lanes    = fs.Bool("lanes", false, "also draw per-CPU lanes (which thread ran where)")
		threads  = fs.String("threads", "", "comma-separated thread IDs to show (default all)")
		svgPath  = fs.String("svg", "", "also write an SVG rendering to this file")
		htmlPath = fs.String("html", "", "also write a self-contained HTML report to this file")
		chromeP  = fs.String("chrometrace", "", "also write Chrome/Perfetto trace-event JSON to this file (open in ui.perfetto.dev)")
		inspect  = fs.Int("inspect", 0, "describe the event of thread TID nearest -at")
		at       = fs.Float64("at", 0, "time (seconds) for -inspect")
		showSrc  = fs.Bool("source", false, "with -inspect, print the highlighted source excerpt")
		repair   = fs.Bool("repair", false, "print the full repair report when the log needs recovery")
		strict   = fs.Bool("strict", false, "fail on a corrupt log instead of repairing it")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected argument %q", fs.Arg(0))}
	}
	if *strict && *repair {
		return usageError{fmt.Errorf("-strict and -repair are mutually exclusive")}
	}

	var timeline *vppb.Timeline
	var program string
	switch {
	case *tlPath != "":
		data, err := os.ReadFile(*tlPath)
		if err != nil {
			return err
		}
		timeline, err = vppb.UnmarshalTimeline(data)
		if err != nil {
			return err
		}
		program = timeline.Program
	case *logPath != "":
		if err := vppb.CheckLogFormat(*format); err != nil {
			return usageError{err}
		}
		log, err := vppb.ReadLogFormat(*logPath, *format)
		if err != nil {
			return err
		}
		if verr := log.Validate(); verr != nil {
			if *strict {
				return fmt.Errorf("%s: corrupt log: %w", *logPath, verr)
			}
			repaired, rep, rerr := vppb.RepairLog(log)
			if rerr != nil {
				return fmt.Errorf("%s: %w", *logPath, rerr)
			}
			if *repair {
				fmt.Fprintf(stderr, "vppb-view: %s: corrupt log (%v)\n", *logPath, verr)
				fmt.Fprint(stderr, rep.String())
			} else {
				fmt.Fprintf(stderr, "vppb-view: %s: corrupt log repaired: %s (-repair for details, -strict to fail)\n",
					*logPath, rep.Summary())
			}
			log = repaired
		}
		res, err := vppb.Simulate(log, vppb.Machine{CPUs: *cpus, LWPs: *lwps})
		if err != nil {
			return err
		}
		timeline = res.Timeline
		program = log.Header.Program
	default:
		return usageError{fmt.Errorf("need -log or -timeline")}
	}
	view, err := vppb.NewView(timeline)
	if err != nil {
		return err
	}

	if *window != "" {
		lo, hi, ok := strings.Cut(*window, ",")
		if !ok {
			return usageError{fmt.Errorf("-window wants start,end")}
		}
		start, err1 := strconv.ParseFloat(lo, 64)
		end, err2 := strconv.ParseFloat(hi, 64)
		if err1 != nil || err2 != nil {
			return usageError{fmt.Errorf("-window wants numbers, got %q", *window)}
		}
		if err := view.SetWindow(
			vppb.Time(start*float64(vppb.Second)),
			vppb.Time(end*float64(vppb.Second))); err != nil {
			return err
		}
	}
	for i := 0; i < *zoomIn; i++ {
		view.ZoomIn(vppb.ZoomFine)
	}
	view.SetCompressed(*compress)
	if *threads != "" {
		var ids []vppb.ThreadID
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return usageError{fmt.Errorf("-threads: %v", err)}
			}
			ids = append(ids, vppb.ThreadID(n))
		}
		view.SelectThreads(ids...)
	}

	if *inspect != 0 {
		in := vppb.NewInspector(timeline)
		ref, ok := in.At(vppb.ThreadID(*inspect), vppb.Time(*at*float64(vppb.Second)))
		if !ok {
			return fmt.Errorf("thread T%d has no events", *inspect)
		}
		desc, err := in.Describe(ref)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, desc)
		if *showSrc {
			excerpt, err := in.SourceExcerpt(ref, 3)
			if err != nil {
				fmt.Fprintln(stderr, "vppb-view: source:", err)
			} else {
				fmt.Fprintln(stdout)
				fmt.Fprint(stdout, excerpt)
			}
		}
		return nil
	}

	fmt.Fprint(stdout, vppb.RenderASCII(view, vppb.ASCIIOptions{Width: *width, MaxFlowRows: *maxRows}))
	if *lanes {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vppb.RenderCPULanesASCII(view, vppb.ASCIIOptions{Width: *width}))
	}

	if *svgPath != "" {
		svg := vppb.RenderSVG(view, vppb.SVGOptions{
			Title: fmt.Sprintf("%s on %d simulated CPUs", program, timeline.CPUs),
		})
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *svgPath)
	}
	if *htmlPath != "" {
		page, err := vppb.RenderHTML(view, vppb.HTMLOptions{
			Title: fmt.Sprintf("%s on %d simulated CPUs", program, timeline.CPUs),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlPath, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *htmlPath)
	}
	if *chromeP != "" {
		data, err := vppb.RenderChromeTrace(timeline)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*chromeP, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *chromeP)
	}
	return nil
}
