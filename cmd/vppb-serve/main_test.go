package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vppb"
)

func traceBytes(t *testing.T) []byte {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	return vppb.MarshalLogText(log)
}

// TestServeEndToEnd boots the daemon on an ephemeral port, runs the
// repeat-POST cache proof over real TCP, and exercises the graceful
// shutdown path via SIGTERM.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	var stderr bytes.Buffer
	var mu sync.Mutex // stderr is written by the server goroutine
	lockedStderr := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return stderr.Write(p)
	})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, io.Discard, lockedStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Readiness probe.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The cache proof over real TCP: identical bodies, miss then hit.
	raw := traceBytes(t)
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/predict?cpus=1,2,4", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	resp1, body1 := post()
	resp2, body2 := post()
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if resp1.Header.Get("X-Vppb-Cache") != "miss" || resp2.Header.Get("X-Vppb-Cache") != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit",
			resp1.Header.Get("X-Vppb-Cache"), resp2.Header.Get("X-Vppb-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("bodies differ:\n--- first\n%s--- second\n%s", body1, body2)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"vppb_profile_cache_hits_total 1", "vppb_profile_cache_misses_total 1"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}

	// Graceful shutdown: SIGTERM to ourselves reaches the daemon's
	// NotifyContext; run must drain and return nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never completed")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(stderr.String(), "drained") {
		t.Fatalf("stderr lacks the drain confirmation:\n%s", stderr.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestUsageErrorsExitStatusTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-cache-entries", "0"},
		{"-max-body", "0"},
		{"-timeout", "-5s"},
		{"-no-such-flag"},
		{"stray-arg"},
	} {
		err := run(args, io.Discard, io.Discard, nil)
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("args %v: exitCode = %d, want 2", args, code)
		}
	}
}

func TestRuntimeErrorExitStatusOne(t *testing.T) {
	// A busy/unbindable address is a runtime failure, not a usage error.
	err := run([]string{"-addr", "256.256.256.256:1"}, io.Discard, io.Discard, nil)
	if err == nil {
		t.Fatal("impossible address accepted")
	}
	if code := exitCode(err); code != 1 {
		t.Fatalf("exitCode = %d, want 1", code)
	}
}

// TestMainExitCodeUsageError re-executes the binary with a bad flag to
// assert the process-level contract: exit status 2.
func TestMainExitCodeUsageError(t *testing.T) {
	if os.Getenv("VPPB_SERVE_USAGE_TEST") == "1" {
		os.Args = []string{"vppb-serve", "-cache-entries", "0"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCodeUsageError")
	cmd.Env = append(os.Environ(), "VPPB_SERVE_USAGE_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(string(out), "vppb-serve:") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}
