package main

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vppb"
	"vppb/internal/serveclient"
)

func traceBytes(t *testing.T) []byte {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	return vppb.MarshalLogText(log)
}

// TestServeEndToEnd boots the daemon on an ephemeral port, runs the
// repeat-POST cache proof over real TCP, and exercises the graceful
// shutdown path via SIGTERM.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	var stderr bytes.Buffer
	var mu sync.Mutex // stderr is written by the server goroutine
	lockedStderr := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return stderr.Write(p)
	})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, io.Discard, lockedStderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Readiness probe.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The cache proof over real TCP: identical bodies, miss then hit.
	raw := traceBytes(t)
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/predict?cpus=1,2,4", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	resp1, body1 := post()
	resp2, body2 := post()
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if resp1.Header.Get("X-Vppb-Cache") != "miss" || resp2.Header.Get("X-Vppb-Cache") != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit",
			resp1.Header.Get("X-Vppb-Cache"), resp2.Header.Get("X-Vppb-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("bodies differ:\n--- first\n%s--- second\n%s", body1, body2)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"vppb_profile_cache_hits_total 1", "vppb_profile_cache_misses_total 1"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}

	// Graceful shutdown: SIGTERM to ourselves reaches the daemon's
	// NotifyContext; run must drain and return nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never completed")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(stderr.String(), "drained") {
		t.Fatalf("stderr lacks the drain confirmation:\n%s", stderr.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestUsageErrorsExitStatusTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-cache-entries", "0"},
		{"-max-body", "0"},
		{"-timeout", "-5s"},
		{"-no-such-flag"},
		{"stray-arg"},
	} {
		err := run(args, io.Discard, io.Discard, nil)
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("args %v: exitCode = %d, want 2", args, code)
		}
	}
}

func TestRuntimeErrorExitStatusOne(t *testing.T) {
	// A busy/unbindable address is a runtime failure, not a usage error.
	err := run([]string{"-addr", "256.256.256.256:1"}, io.Discard, io.Discard, nil)
	if err == nil {
		t.Fatal("impossible address accepted")
	}
	if code := exitCode(err); code != 1 {
		t.Fatalf("exitCode = %d, want 1", code)
	}
}

// startDaemon re-executes the test binary as a real vppb-serve process
// (child mode below) and returns the command plus the bound address
// parsed from its startup banner.
func startDaemon(t *testing.T, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillAndRestartReplaysFromStore")
	cmd.Env = append(os.Environ(), "VPPB_SERVE_CHILD=1", "VPPB_SERVE_STORE_DIR="+storeDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	// The banner is "vppb-serve: listening on 127.0.0.1:PORT (...)".
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					addrCh <- rest[:j]
					break
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never announced its address")
		return nil, ""
	}
}

// terminate SIGTERMs a daemon child and requires a clean (drained) exit.
func terminate(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v", err)
	}
}

// TestKillAndRestartReplaysFromStore is the durability proof at the
// process level: upload a trace to a real vppb-serve process, SIGTERM it,
// start a fresh process on the same -store-dir, and demand the digest
// reference replay byte-identically — served as a cache hit, without the
// client ever re-uploading the bytes.
func TestKillAndRestartReplaysFromStore(t *testing.T) {
	if os.Getenv("VPPB_SERVE_CHILD") == "1" {
		os.Args = []string{"vppb-serve",
			"-addr", "127.0.0.1:0",
			"-store-dir", os.Getenv("VPPB_SERVE_STORE_DIR"),
			"-drain", "10s"}
		main()
		return
	}
	storeDir := t.TempDir()
	raw := traceBytes(t)
	digest := serveclient.Digest(raw)

	cmd1, addr1 := startDaemon(t, storeDir)
	resp1, err := http.Post("http://"+addr1+"/v1/predict?cpus=1,2", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp1.Body)
	resp1.Body.Close()
	if resp1.StatusCode != 200 {
		t.Fatalf("upload: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Vppb-Cache"); got != "miss" {
		t.Fatalf("upload cache header = %q, want miss", got)
	}
	terminate(t, cmd1)

	cmd2, addr2 := startDaemon(t, storeDir)
	resp2, err := http.Post("http://"+addr2+"/v1/predict?cpus=1,2&trace="+digest, "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("replay after restart: %d %s", resp2.StatusCode, body2)
	}
	// The restarted daemon already has the trace: a hit, not a re-upload.
	if got := resp2.Header.Get("X-Vppb-Cache"); got != "hit" {
		t.Fatalf("replay cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("prediction changed across restart:\n--- before\n%s--- after\n%s", body1, body2)
	}
	terminate(t, cmd2)
}

// TestUnwritableStoreDirExitsOne: a -store-dir the daemon cannot create
// (here: a path through a plain file, which fails even for root, unlike
// permission bits) must refuse startup with a clean runtime error — exit
// status 1, no panic, no listener.
func TestUnwritableStoreDirExitsOne(t *testing.T) {
	if os.Getenv("VPPB_SERVE_BADSTORE") == "1" {
		os.Args = []string{"vppb-serve", "-store-dir", os.Getenv("VPPB_SERVE_STORE_DIR")}
		main()
		return
	}
	plain := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestUnwritableStoreDirExitsOne")
	cmd.Env = append(os.Environ(),
		"VPPB_SERVE_BADSTORE=1",
		"VPPB_SERVE_STORE_DIR="+filepath.Join(plain, "store"))
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1 (runtime error)\n%s", code, out)
	}
	if strings.Contains(string(out), "panic") {
		t.Fatalf("daemon panicked instead of failing cleanly:\n%s", out)
	}
	if !strings.Contains(string(out), "vppb-serve:") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}

// TestMainExitCodeUsageError re-executes the binary with a bad flag to
// assert the process-level contract: exit status 2.
func TestMainExitCodeUsageError(t *testing.T) {
	if os.Getenv("VPPB_SERVE_USAGE_TEST") == "1" {
		os.Args = []string{"vppb-serve", "-cache-entries", "0"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCodeUsageError")
	cmd.Env = append(os.Environ(), "VPPB_SERVE_USAGE_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(string(out), "vppb-serve:") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}

// TestServeClusterEndToEnd boots three daemons with a shared -peers
// membership over real TCP and proves any node answers for a digest only
// one of them owns, with the owner named in X-Vppb-Peer.
func TestServeClusterEndToEnd(t *testing.T) {
	// Reserve three loopback ports, then hand them to the daemons. The
	// close-then-rebind window is the standard (tiny) race; membership
	// must be known before any node starts.
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peers := strings.Join(addrs, ",")
	for _, addr := range addrs {
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func(addr string) {
			done <- run([]string{"-addr", addr, "-peers", peers, "-self", addr},
				io.Discard, io.Discard, ready)
		}(addr)
		select {
		case <-ready:
		case err := <-done:
			t.Fatalf("node %s exited early: %v", addr, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("node %s never became ready", addr)
		}
	}

	raw := traceBytes(t)
	resp, err := http.Post("http://"+addrs[0]+"/v1/predict?cpus=1,2", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	digest := resp.Header.Get("X-Vppb-Trace")

	// Every node answers the digest identically; exactly one (the owner)
	// serves it itself, the other two name that owner.
	var bodies [][]byte
	ownerVotes := map[string]int{}
	for _, addr := range addrs {
		r, err := http.Get("http://" + addr + "/v1/bounds?trace=" + digest)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("bounds via %s: %d %s", addr, r.StatusCode, b)
		}
		bodies = append(bodies, b)
		ownerVotes[r.Header.Get("X-Vppb-Peer")]++
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("node %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if ownerVotes[""] != 1 {
		t.Fatalf("want exactly 1 self-served response, got peer headers %v", ownerVotes)
	}
	for peer, n := range ownerVotes {
		if peer != "" && n != 2 {
			t.Fatalf("want the 2 proxied responses to agree on one owner, got %v", ownerVotes)
		}
	}
}

func TestClusterFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-peers", "a:1,b:1"},                  // -peers without -self
		{"-self", "a:1"},                       // -self without -peers
		{"-peers", "a:1,,b:1", "-self", "a:1"}, // empty membership entry
	} {
		err := run(args, io.Discard, io.Discard, nil)
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("args %v: exitCode = %d, want 2", args, code)
		}
	}
	// Self outside the membership is caught by the serve layer at startup.
	err := run([]string{"-addr", "127.0.0.1:0", "-peers", "a:1,b:1", "-self", "c:1"}, io.Discard, io.Discard, nil)
	if err == nil {
		t.Fatal("self outside -peers accepted")
	}
}
