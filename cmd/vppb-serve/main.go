// Command vppb-serve runs the VPPB prediction pipeline as a long-lived
// HTTP daemon: upload a recorded log once, get predictions, speed-up
// bounds, deadlock analyses and renderings from the content-addressed
// profile cache on every later request.
//
// Usage:
//
//	vppb-serve -addr :8077
//	vppb-serve -addr 127.0.0.1:8077 -cache-entries 256 -timeout 10s
//	vppb-serve -max-body 8388608 -max-events 50000000
//	vppb-serve -store-dir /var/lib/vppb -max-inflight 32
//
// With -store-dir every accepted upload is persisted (temp file + fsync +
// atomic rename, keyed by SHA-256) and re-verified on read, so
// ?trace=<digest> replay survives daemon restarts; corrupt store files
// are quarantined, never served. -max-inflight bounds concurrent
// simulation requests — beyond it requests queue briefly, then are shed
// with 503 + Retry-After.
//
// Endpoints (see the serve package for details):
//
//	POST /v1/predict?cpus=1,2,4,8&policy=ts&strict=false
//	GET  /v1/bounds?trace=<digest>     GET /v1/lockorder?trace=<digest>
//	GET  /v1/view.svg?trace=<digest>   GET /v1/view.html?trace=<digest>
//	GET  /metrics                      GET /healthz
//	     /debug/pprof/
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight simulations for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vppb"
	"vppb/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-serve:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks an invocation mistake (as opposed to a runtime
// failure): the process exits with status 2, the conventional
// bad-command-line code.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// exitCode maps an error from run to a process exit status.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// run starts the daemon and blocks until the listener fails or ctx-level
// shutdown completes. When ready is non-nil, the bound address is sent on
// it once the listener is up (tests use this to avoid port races).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("vppb-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8077", "listen address")
		cacheEntries = fs.Int("cache-entries", serve.DefaultCacheEntries, "profile cache capacity (content-addressed LRU entries)")
		maxBody      = fs.Int64("max-body", serve.DefaultMaxBodyBytes, "largest accepted trace upload in bytes")
		timeout      = fs.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline (0 = none)")
		drain        = fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight requests")
		maxEvents    = fs.Int64("max-events", 0, "per-simulation event budget, like vppb-sim -max-events (0 = deadline-derived only)")
		maxVtime     = fs.Int64("max-vtime", 0, "per-simulation virtual-time budget in microseconds (0 = unlimited)")
		eventsPerSec = fs.Int64("sim-events-per-sec", serve.DefaultSimEventsPerSecond, "deadline-to-budget calibration: events a worker is assumed to simulate per wall-clock second (<= 0 disables)")
		storeDir     = fs.String("store-dir", "", "durable content-addressed store directory; uploads survive restarts (empty = memory only)")
		maxInflight  = fs.Int("max-inflight", serve.DefaultMaxInflight, "concurrent simulation requests admitted before shedding with 503 (0 = unlimited)")
		admWait      = fs.Duration("admission-wait", serve.DefaultAdmissionWait, "how long an over-capacity request may queue for a slot before being shed (0 = shed immediately)")
		peers        = fs.String("peers", "", "comma-separated cluster membership, host:port per node including this one; every node builds the same consistent-hash ring and proxies requests to the digest's owner (empty = standalone)")
		self         = fs.String("self", "", "this node's own entry in -peers (required with -peers)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected argument %q", fs.Arg(0))}
	}
	if *cacheEntries < 1 {
		return usageError{fmt.Errorf("-cache-entries must be at least 1, got %d", *cacheEntries)}
	}
	if *maxBody < 1 {
		return usageError{fmt.Errorf("-max-body must be positive, got %d", *maxBody)}
	}
	if *timeout < 0 || *drain < 0 {
		return usageError{fmt.Errorf("-timeout and -drain must not be negative")}
	}
	if *maxInflight < 0 {
		return usageError{fmt.Errorf("-max-inflight must not be negative, got %d", *maxInflight)}
	}
	if *admWait < 0 {
		return usageError{fmt.Errorf("-admission-wait must not be negative, got %s", *admWait)}
	}
	var peerList []string
	if *peers != "" {
		if *self == "" {
			return usageError{errors.New("-peers requires -self (this node's own host:port from the list)")}
		}
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				return usageError{fmt.Errorf("-peers has an empty entry in %q", *peers)}
			}
			peerList = append(peerList, p)
		}
	} else if *self != "" {
		return usageError{errors.New("-self without -peers; a one-node cluster lists itself in -peers")}
	}

	cfg := serve.Config{
		CacheEntries:       *cacheEntries,
		MaxBodyBytes:       *maxBody,
		RequestTimeout:     *timeout,
		MaxSimEvents:       *maxEvents,
		MaxVirtualTime:     vppb.Duration(*maxVtime),
		SimEventsPerSecond: *eventsPerSec,
		StoreDir:           *storeDir,
		MaxInflight:        *maxInflight,
		AdmissionWait:      *admWait,
		Peers:              peerList,
		Self:               *self,
	}
	if *timeout == 0 {
		cfg.RequestTimeout = -1 // Config treats 0 as "default"; -1 disables.
	}
	if *eventsPerSec == 0 {
		cfg.SimEventsPerSecond = -1
	}
	if *maxInflight == 0 {
		cfg.MaxInflight = -1
	}
	if *admWait == 0 {
		cfg.AdmissionWait = -1
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err // e.g. an unwritable -store-dir: refuse to start, exit 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	durability := "memory-only"
	if *storeDir != "" {
		durability = fmt.Sprintf("store %s (%d entries recovered)", *storeDir, srv.Store().Len())
	}
	topology := "standalone"
	if r := srv.Ring(); r != nil {
		topology = fmt.Sprintf("cluster of %d (self %s)", r.N(), *self)
	}
	fmt.Fprintf(stderr, "vppb-serve: listening on %s (cache %d entries, timeout %s, %s, %s)\n",
		ln.Addr(), *cacheEntries, *timeout, durability, topology)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight simulations.
	fmt.Fprintf(stderr, "vppb-serve: shutting down (draining up to %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stderr, "vppb-serve: drained")
	return nil
}
