package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ocean", "prodcons", "example", "dbserver"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestMissingWorkload(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("missing -workload accepted")
	}
	if _, _, err := runCmd(t, "-workload", "bogus"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestRecordToStdout(t *testing.T) {
	out, _, err := runCmd(t, "-workload", "example", "-scale", "0.2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# vppb-log v1") {
		t.Fatalf("stdout is not a text log:\n%.100s", out)
	}
}

func TestRecordToFileAndStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	_, errOut, err := runCmd(t, "-workload", "example", "-scale", "0.2", "-out", path, "-stats", "-paper")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "recorded") {
		t.Fatalf("stderr = %q", errOut)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestPaperListing(t *testing.T) {
	out, _, err := runCmd(t, "-workload", "example", "-paper")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "thr_create thr_a") {
		t.Fatalf("paper listing missing:\n%s", out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, err := runCmd(t, "-nonsense"); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestUnknownWorkloadNamedInError(t *testing.T) {
	_, _, err := runCmd(t, "-workload", "bogus")
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the workload: %v", err)
	}
}

func TestUnwritableOutNamesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "x.log")
	_, _, err := runCmd(t, "-workload", "example", "-scale", "0.2", "-out", path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the output file: %v", err)
	}
}

// TestMainExitCode re-executes the test binary as the real command to
// assert the process-level contract: exit status 1 and a one-line
// diagnostic.
func TestMainExitCode(t *testing.T) {
	if os.Getenv("VPPB_RECORD_MAIN_TEST") == "1" {
		os.Args = []string{"vppb-record", "-workload", "bogus"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCode")
	cmd.Env = append(os.Environ(), "VPPB_RECORD_MAIN_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(string(out), "vppb-record:") || !strings.Contains(string(out), "bogus") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}
