// Command vppb-record performs a monitored uni-processor execution of a
// registered workload and writes the recorded log — the Recorder stage of
// the paper's figure 1.
//
// Usage:
//
//	vppb-record -workload ocean -threads 8 -out ocean-8.log
//	vppb-record -workload example -paper
//	vppb-record -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vppb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-record:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the registered workloads and exit")
		workload = fs.String("workload", "", "workload to record (see -list)")
		threads  = fs.Int("threads", 1, "worker threads (SPLASH-2 style workloads create one per target processor)")
		scale    = fs.Float64("scale", 1.0, "problem-size multiplier")
		out      = fs.String("out", "", "output file; .bin selects the binary format (default: stdout, text)")
		paper    = fs.Bool("paper", false, "also print the log in the paper's figure-2 listing style")
		stats    = fs.Bool("stats", false, "also print log statistics (events, events/s, sizes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range vppb.Workloads() {
			w, err := vppb.GetWorkload(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-14s %s\n", name, w.Description)
		}
		return nil
	}
	if *workload == "" {
		return fmt.Errorf("missing -workload (try -list)")
	}

	log, err := vppb.RecordWorkload(*workload, vppb.WorkloadParams{Threads: *threads, Scale: *scale})
	if err != nil {
		return err
	}

	if *out != "" {
		if err := vppb.WriteLog(*out, log); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "recorded %d events over %s to %s\n", len(log.Events), log.Duration(), *out)
	} else if !*paper && !*stats {
		if _, err := stdout.Write(vppb.MarshalLogText(log)); err != nil {
			return err
		}
	}
	if *paper {
		fmt.Fprint(stdout, vppb.FormatLog(log))
	}
	if *stats {
		st := log.ComputeStats()
		fmt.Fprintf(stdout, "program   %s\nduration  %s\nevents    %d\nevents/s  %.0f\ntext      %d bytes\nbinary    %d bytes\nintrusion %s\n",
			log.Header.Program, st.Duration, st.Events, st.EventsPerSec, st.TextBytes, st.BinaryBytes, st.ProbeOverhead)
	}
	return nil
}
