package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

// fixtureLog records a workload into a temp file once per test.
func fixtureLog(t *testing.T, workload string) string {
	t.Helper()
	log, err := vppb.RecordWorkload(workload, vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), workload+".bin")
	if err := vppb.WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestBasicPrediction(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-perthread")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predicted duration", "predicted speed-up", "thr_a", "thr_b"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingLog(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("missing -log accepted")
	}
	if _, _, err := runCmd(t, "-log", "/nonexistent"); err == nil {
		t.Fatal("unreadable log accepted")
	}
}

func TestContentionAndCPUReports(t *testing.T) {
	path := fixtureLog(t, "prodcons")
	out, _, err := runCmd(t, "-log", path, "-cpus", "8", "-contention", "-cpureport")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"contention report", "buffer", "per-CPU occupancy", "average utilization", "serial"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The buffer mutex serializes nearly the whole run: its serialization
	// score must head the table.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "buffer") && !strings.Contains(line, "%") {
			t.Errorf("buffer row lacks a serialization score: %s", line)
		}
	}
}

func TestSweep(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "x\n") != 3 {
		t.Fatalf("sweep rows:\n%s", out)
	}
	if _, _, err := runCmd(t, "-log", path, "-sweep", "1,zero"); err == nil {
		t.Fatal("bad sweep accepted")
	}
}

// TestSweepDeterministic pins the worker-pool contract: the parallel
// sweep prints byte-identical output across runs, and exactly what a
// sequential loop of single-machine simulations over the shared profile
// predicts.
func TestSweepDeterministic(t *testing.T) {
	path := fixtureLog(t, "fft")
	first, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("two identical sweeps differ:\n--- first\n%s--- second\n%s", first, second)
	}

	// Sequential reference: one profile, one SimulateProfile per machine,
	// formatted the same way.
	log, err := vppb.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := vppb.BuildProfile(log)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := vppb.SimulateProfile(prof, vppb.Machine{CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	fmt.Fprintf(&want, "%6s %16s %10s\n", "CPUs", "predicted time", "speed-up")
	for _, cpus := range []int{1, 2, 4, 8} {
		res, err := vppb.SimulateProfile(prof, vppb.Machine{CPUs: cpus})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&want, "%6d %16s %9.2fx\n", cpus, res.Duration, vppb.Speedup(uni.Duration, res.Duration))
	}
	if first != want.String() {
		t.Fatalf("parallel sweep != sequential loop:\n--- parallel\n%s--- sequential\n%s", first, want.String())
	}
}

// TestSweepBaselineSharesMachineParameters: the uniprocessor baseline
// inherits -lwps and -commdelay, so the 1-CPU sweep point is the baseline
// itself and must print a speed-up of exactly 1.00.
func TestSweepBaselineSharesMachineParameters(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-sweep", "1,4", "-lwps", "2", "-commdelay", "50")
	if err != nil {
		t.Fatal(err)
	}
	var ones int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "1 ") && strings.HasSuffix(line, "1.00x") {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("1-CPU row should equal the shared-parameter baseline (speed-up 1.00x):\n%s", out)
	}
}

func TestTimelineOutput(t *testing.T) {
	path := fixtureLog(t, "example")
	tlPath := filepath.Join(t.TempDir(), "x.tl")
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-timeline", tlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "wrote") {
		t.Fatalf("stderr = %q", errOut)
	}
	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := vppb.UnmarshalTimeline(data)
	if err != nil {
		t.Fatal(err)
	}
	if tl.CPUs != 2 {
		t.Fatalf("timeline CPUs = %d", tl.CPUs)
	}
}

// corruptLog records a workload, truncates the log, and stores it.
func corruptLog(t *testing.T) string {
	t.Helper()
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := vppb.CorruptLog(log, "truncate", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.log")
	if err := vppb.WriteLog(path, bad); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMissingFileNamedInError(t *testing.T) {
	_, _, err := runCmd(t, "-log", "/no/such/file.log")
	if err == nil || !strings.Contains(err.Error(), "/no/such/file.log") {
		t.Fatalf("error does not name the file: %v", err)
	}
}

func TestParseErrorNamesFileAndLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.log")
	if err := os.WriteFile(path, []byte("not a log\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := runCmd(t, "-log", path)
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if !strings.Contains(err.Error(), path) || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error lacks the file or line number: %v", err)
	}
}

func TestCorruptLogRepairedByDefault(t *testing.T) {
	path := corruptLog(t)
	out, errOut, err := runCmd(t, "-log", path, "-cpus", "2")
	if err != nil {
		t.Fatalf("graceful degradation failed: %v", err)
	}
	if !strings.Contains(errOut, "corrupt log repaired") {
		t.Fatalf("stderr lacks the repair note:\n%s", errOut)
	}
	if !strings.Contains(out, "predicted duration") {
		t.Fatalf("no prediction printed:\n%s", out)
	}
}

func TestRepairFlagPrintsReport(t *testing.T) {
	path := corruptLog(t)
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-repair")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "repair:") || !strings.Contains(errOut, "[synthesize-afters]") {
		t.Fatalf("stderr lacks the full repair report:\n%s", errOut)
	}
}

func TestStrictRejectsCorrupt(t *testing.T) {
	path := corruptLog(t)
	_, _, err := runCmd(t, "-log", path, "-cpus", "2", "-strict")
	if err == nil || !strings.Contains(err.Error(), "corrupt log") || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrictAcceptsClean(t *testing.T) {
	path := fixtureLog(t, "example")
	if _, _, err := runCmd(t, "-log", path, "-cpus", "2", "-strict"); err != nil {
		t.Fatal(err)
	}
}

func TestStrictRepairConflict(t *testing.T) {
	path := fixtureLog(t, "example")
	_, _, err := runCmd(t, "-log", path, "-strict", "-repair")
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}

func TestEventBudgetFlag(t *testing.T) {
	path := fixtureLog(t, "example")
	_, _, err := runCmd(t, "-log", path, "-cpus", "2", "-max-events", "1")
	if err == nil || !strings.Contains(err.Error(), "event budget") {
		t.Fatalf("err = %v", err)
	}
}

// TestMainExitCode re-executes the test binary as the real command to
// assert the process-level contract: exit status 1 and a one-line
// diagnostic naming the offending file.
func TestMainExitCode(t *testing.T) {
	if os.Getenv("VPPB_SIM_MAIN_TEST") == "1" {
		os.Args = []string{"vppb-sim", "-log", "/no/such/file.log"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCode")
	cmd.Env = append(os.Environ(), "VPPB_SIM_MAIN_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(string(out), "vppb-sim: /no/such/file.log:") {
		t.Fatalf("diagnostic missing:\n%s", out)
	}
}

// TestPolicyFlag: every registered policy is accepted, named in the
// machine line, and produces byte-identical output across runs.
func TestPolicyFlag(t *testing.T) {
	path := fixtureLog(t, "prodcons")
	for _, policy := range vppb.SchedulingPolicies() {
		first, _, err := runCmd(t, "-log", path, "-cpus", "4", "-policy", policy)
		if err != nil {
			t.Fatalf("-policy %s: %v", policy, err)
		}
		if !strings.Contains(first, "policy "+policy) {
			t.Errorf("-policy %s: machine line does not name the policy:\n%s", policy, first)
		}
		second, _, err := runCmd(t, "-log", path, "-cpus", "4", "-policy", policy)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Errorf("-policy %s: two identical runs differ:\n--- first\n%s--- second\n%s",
				policy, first, second)
		}
	}
}

// TestPolicySweepDeterministic: the concurrent sweep stays byte-identical
// across runs under a non-default policy too.
func TestPolicySweepDeterministic(t *testing.T) {
	path := fixtureLog(t, "fft")
	first, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4", "-policy", "rr")
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4", "-policy", "rr")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("rr sweeps differ:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestUnknownPolicyRejected: an unknown -policy is a usage error (exit
// status 2) whose message lists every valid name.
func TestUnknownPolicyRejected(t *testing.T) {
	path := fixtureLog(t, "example")
	_, _, err := runCmd(t, "-log", path, "-policy", "lottery")
	if err == nil {
		t.Fatal("unknown -policy accepted")
	}
	for _, want := range append([]string{"lottery"}, vppb.SchedulingPolicies()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if code := exitCode(err); code != 2 {
		t.Errorf("exitCode = %d, want the usage-error status 2", code)
	}
}

// TestMainExitCodeUsageError re-executes the binary with a bad -policy to
// assert the process-level contract: exit status 2 and a diagnostic
// listing the valid policies.
func TestMainExitCodeUsageError(t *testing.T) {
	if os.Getenv("VPPB_SIM_USAGE_TEST") == "1" {
		os.Args = []string{"vppb-sim", "-log", "whatever.log", "-policy", "lottery"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitCodeUsageError")
	cmd.Env = append(os.Environ(), "VPPB_SIM_USAGE_TEST=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err=%v output=%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a usage error", code)
	}
	if !strings.Contains(string(out), "unknown scheduling policy") ||
		!strings.Contains(string(out), strings.Join(vppb.SchedulingPolicies(), ", ")) {
		t.Fatalf("diagnostic does not list the valid policies:\n%s", out)
	}
}

func TestOverrideFlags(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-cpus", "2",
		"-bind", "4=cpu:1", "-bind", "5=lwp", "-prio", "4=55")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "predicted duration") {
		t.Fatal("no prediction output")
	}
	// Malformed overrides are rejected.
	for _, bad := range []string{"x", "4=cpu:x", "4=teapot", "nan=lwp"} {
		if _, _, err := runCmd(t, "-log", path, "-bind", bad); err == nil {
			t.Errorf("bad -bind %q accepted", bad)
		}
	}
	for _, bad := range []string{"x", "4=x", "nan=5"} {
		if _, _, err := runCmd(t, "-log", path, "-prio", bad); err == nil {
			t.Errorf("bad -prio %q accepted", bad)
		}
	}
}
