package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

// fixtureLog records a workload into a temp file once per test.
func fixtureLog(t *testing.T, workload string) string {
	t.Helper()
	log, err := vppb.RecordWorkload(workload, vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), workload+".bin")
	if err := vppb.WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestBasicPrediction(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-cpus", "2", "-perthread")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predicted duration", "predicted speed-up", "thr_a", "thr_b"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingLog(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("missing -log accepted")
	}
	if _, _, err := runCmd(t, "-log", "/nonexistent"); err == nil {
		t.Fatal("unreadable log accepted")
	}
}

func TestContentionAndCPUReports(t *testing.T) {
	path := fixtureLog(t, "prodcons")
	out, _, err := runCmd(t, "-log", path, "-cpus", "8", "-contention", "-cpureport")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"contention report", "buffer", "per-CPU occupancy", "average utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSweep(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-sweep", "1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "x\n") != 3 {
		t.Fatalf("sweep rows:\n%s", out)
	}
	if _, _, err := runCmd(t, "-log", path, "-sweep", "1,zero"); err == nil {
		t.Fatal("bad sweep accepted")
	}
}

func TestTimelineOutput(t *testing.T) {
	path := fixtureLog(t, "example")
	tlPath := filepath.Join(t.TempDir(), "x.tl")
	_, errOut, err := runCmd(t, "-log", path, "-cpus", "2", "-timeline", tlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "wrote") {
		t.Fatalf("stderr = %q", errOut)
	}
	data, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := vppb.UnmarshalTimeline(data)
	if err != nil {
		t.Fatal(err)
	}
	if tl.CPUs != 2 {
		t.Fatalf("timeline CPUs = %d", tl.CPUs)
	}
}

func TestOverrideFlags(t *testing.T) {
	path := fixtureLog(t, "example")
	out, _, err := runCmd(t, "-log", path, "-cpus", "2",
		"-bind", "4=cpu:1", "-bind", "5=lwp", "-prio", "4=55")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "predicted duration") {
		t.Fatal("no prediction output")
	}
	// Malformed overrides are rejected.
	for _, bad := range []string{"x", "4=cpu:x", "4=teapot", "nan=lwp"} {
		if _, _, err := runCmd(t, "-log", path, "-bind", bad); err == nil {
			t.Errorf("bad -bind %q accepted", bad)
		}
	}
	for _, bad := range []string{"x", "4=x", "nan=5"} {
		if _, _, err := runCmd(t, "-log", path, "-prio", bad); err == nil {
			t.Errorf("bad -prio %q accepted", bad)
		}
	}
}
