package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goTraceFixture = "../../internal/gotrace/testdata/go-mutexchan.trace"

func TestGoTracePrediction(t *testing.T) {
	for _, format := range []string{"gotrace", "auto"} {
		out, _, err := runCmd(t, "-log", goTraceFixture, "-format", format, "-cpus", "2")
		if err != nil {
			t.Fatalf("-format %s: %v", format, err)
		}
		if !strings.Contains(out, "predicted duration") {
			t.Errorf("-format %s output missing prediction:\n%s", format, out)
		}
	}
}

func TestGoTraceMalformedExitsCleanly(t *testing.T) {
	// A stream that sniffs as a Go trace but fails to parse must be a
	// plain error, not a panic and not a zero-event prediction.
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, append([]byte("go 1.23 trace\x00\x00\x00"), 0x7f), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCmd(t, "-log", path, "-cpus", "2"); err == nil {
		t.Fatal("malformed Go trace accepted")
	}
}

func TestFormatFlagValidation(t *testing.T) {
	_, _, err := runCmd(t, "-log", goTraceFixture, "-format", "pprof")
	if err == nil {
		t.Fatal("unknown -format accepted")
	}
	// Forcing the wrong frontend fails instead of misparsing.
	if _, _, err := runCmd(t, "-log", goTraceFixture, "-format", "vppb"); err == nil {
		t.Fatal("-format vppb accepted a Go trace")
	}
}
