// Command vppb-sim predicts a recorded program's multiprocessor execution
// — the Simulator stage of the paper's figure 1. It reads a log written by
// vppb-record, simulates it under the given machine configuration, and
// prints the predicted execution time, the predicted speed-up over a
// one-processor replay, and optional reports.
//
// Usage:
//
//	vppb-sim -log ocean-8.log -cpus 8 -perthread -contention -cpureport
//	vppb-sim -log app.log -cpus 4 -lwps 2 -commdelay 50
//	vppb-sim -log app.log -cpus 2 -bind 4=cpu:1 -bind 5=lwp -prio 6=55
//	vppb-sim -log app.log -sweep 1,2,4,8,16
//	vppb-sim -log trace.out -format gotrace -cpus 8  # Go runtime execution trace
//	vppb-sim -log app.log -cpus 8 -policy rr         # what-if: round-robin scheduling
//	vppb-sim -log app.log -cpus 8 -timeline app.tl   # artifact (g) for vppb-view
//	vppb-sim -log damaged.log -repair                # print every applied fix
//	vppb-sim -log damaged.log -strict                # refuse corrupt input
//
// A structurally invalid log is repaired automatically before simulation
// (a one-line note goes to stderr); -repair additionally prints the full
// repair report, and -strict turns any corruption into a hard failure.
// -max-events and -max-vtime bound the simulation itself.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"vppb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-sim:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks an invocation mistake (as opposed to a runtime
// failure): the process exits with status 2, the conventional
// bad-command-line code.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// exitCode maps an error from run to a process exit status.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

type bindFlags struct {
	overrides map[vppb.ThreadID]vppb.Override
}

func (b *bindFlags) String() string { return "" }

// Set parses "TID=cpu:N", "TID=lwp" or "TID=unbound".
func (b *bindFlags) Set(v string) error {
	tidStr, spec, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want TID=cpu:N | TID=lwp | TID=unbound, got %q", v)
	}
	tid, err := strconv.Atoi(tidStr)
	if err != nil {
		return fmt.Errorf("thread id %q: %v", tidStr, err)
	}
	ov := b.overrides[vppb.ThreadID(tid)]
	switch {
	case spec == "lwp":
		ov.Binding = vppb.BindLWP
	case spec == "unbound":
		ov.Binding = vppb.BindUnbound
	case strings.HasPrefix(spec, "cpu:"):
		cpu, err := strconv.Atoi(spec[4:])
		if err != nil {
			return fmt.Errorf("cpu %q: %v", spec[4:], err)
		}
		ov.Binding = vppb.BindCPU
		ov.CPU = cpu
	default:
		return fmt.Errorf("unknown binding %q", spec)
	}
	b.overrides[vppb.ThreadID(tid)] = ov
	return nil
}

type prioFlags struct {
	overrides map[vppb.ThreadID]vppb.Override
}

func (p *prioFlags) String() string { return "" }

// Set parses "TID=PRIO": pin a thread's priority, ignoring thr_setprio.
func (p *prioFlags) Set(v string) error {
	tidStr, prioStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want TID=PRIO, got %q", v)
	}
	tid, err := strconv.Atoi(tidStr)
	if err != nil {
		return err
	}
	prio, err := strconv.Atoi(prioStr)
	if err != nil {
		return err
	}
	ov := p.overrides[vppb.ThreadID(tid)]
	ov.Priority = &prio
	p.overrides[vppb.ThreadID(tid)] = ov
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	overrides := map[vppb.ThreadID]vppb.Override{}
	fs := flag.NewFlagSet("vppb-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath    = fs.String("log", "", "recorded log file (required)")
		format     = fs.String("format", "auto", "input trace format: auto | vppb | gotrace (a Go runtime execution trace)")
		cpus       = fs.Int("cpus", 1, "number of processors")
		lwps       = fs.Int("lwps", 0, "number of LWPs (0 = one per CPU, honour thr_setconcurrency)")
		commDelay  = fs.Int64("commdelay", 0, "inter-CPU communication delay in microseconds")
		noPreempt  = fs.Bool("nopreempt", false, "disable priority preemption")
		policy     = fs.String("policy", "", "scheduling policy: "+strings.Join(vppb.SchedulingPolicies(), ", ")+" (default \"ts\")")
		perThread  = fs.Bool("perthread", false, "print per-thread statistics")
		contention = fs.Bool("contention", false, "print the contention report (top objects and most-blocked threads)")
		cpuReport  = fs.Bool("cpureport", false, "print per-CPU busy time and utilization")
		timelineP  = fs.String("timeline", "", "write the predicted execution (figure 1's artifact g) to this file for vppb-view")
		sweep      = fs.String("sweep", "", "comma-separated CPU counts: print a prediction per machine size instead of one simulation")
		optimize   = fs.Bool("optimize", false, "rank every (policy x CPU count) configuration and print the winner; -sweep overrides the CPU grid (default 1,2,4,8)")
		repair     = fs.Bool("repair", false, "print the full repair report when the log needs recovery")
		strict     = fs.Bool("strict", false, "fail on a corrupt log instead of repairing it")
		maxEvents  = fs.Int64("max-events", 0, "abort the simulation after this many simulated events (0 = unlimited)")
		maxVtime   = fs.Int64("max-vtime", 0, "abort the simulation past this many microseconds of virtual time (0 = unlimited)")
	)
	fs.Var(&bindFlags{overrides}, "bind", "thread binding override: TID=cpu:N | TID=lwp | TID=unbound (repeatable)")
	fs.Var(&prioFlags{overrides}, "prio", "pin a thread's priority: TID=PRIO (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *logPath == "" {
		return fmt.Errorf("missing -log")
	}
	if *strict && *repair {
		return fmt.Errorf("-strict and -repair are mutually exclusive")
	}
	if err := vppb.CheckPolicy(*policy); err != nil {
		return usageError{fmt.Errorf("-policy: %w", err)}
	}
	if err := vppb.CheckLogFormat(*format); err != nil {
		return usageError{err}
	}
	log, err := vppb.ReadLogFormat(*logPath, *format)
	if err != nil {
		return fmt.Errorf("%s: %w", *logPath, err)
	}
	if verr := log.Validate(); verr != nil {
		if *strict {
			return fmt.Errorf("%s: corrupt log: %w", *logPath, verr)
		}
		repaired, rep, rerr := vppb.RepairLog(log)
		if rerr != nil {
			return fmt.Errorf("%s: %w", *logPath, rerr)
		}
		if *repair {
			fmt.Fprintf(stderr, "vppb-sim: %s: corrupt log (%v)\n", *logPath, verr)
			fmt.Fprint(stderr, rep.String())
		} else {
			fmt.Fprintf(stderr, "vppb-sim: %s: corrupt log repaired: %s (-repair for details, -strict to fail)\n",
				*logPath, rep.Summary())
		}
		log = repaired
	}

	// The profile is derived once and shared, read-only, by every
	// simulation this invocation runs (the prediction, its uniprocessor
	// baseline, and all sweep points).
	prof, err := vppb.BuildProfile(log)
	if err != nil {
		return err
	}

	machine := vppb.Machine{
		CPUs:           *cpus,
		LWPs:           *lwps,
		CommDelay:      vppb.Duration(*commDelay),
		NoPreemption:   *noPreempt,
		Policy:         *policy,
		Overrides:      overrides,
		MaxSimEvents:   *maxEvents,
		MaxVirtualTime: vppb.Duration(*maxVtime),
	}
	if *optimize {
		return runOptimize(stdout, stderr, log, prof, *sweep)
	}
	if *sweep != "" {
		return runSweep(stdout, prof, *sweep, machine)
	}

	both, err := vppb.SimulateMany(prof, []vppb.Machine{machine, machine.Uniprocessor()})
	if err != nil {
		return err
	}
	res, uni := both[0], both[1]
	speedup := vppb.Speedup(uni.Duration, res.Duration)

	fmt.Fprintf(stdout, "program            %s\n", log.Header.Program)
	fmt.Fprintf(stdout, "recorded duration  %s (on 1 CPU, monitored)\n", log.Duration())
	polName := *policy
	if polName == "" {
		polName = vppb.DefaultPolicy
	}
	fmt.Fprintf(stdout, "machine            %d CPUs, %d LWPs, comm delay %s, policy %s\n", *cpus, *lwps, vppb.Duration(*commDelay), polName)
	fmt.Fprintf(stdout, "predicted duration %s\n", res.Duration)
	fmt.Fprintf(stdout, "predicted speed-up %.2f\n", speedup)
	fmt.Fprintf(stdout, "simulated events   %d\n", res.Events)

	if *timelineP != "" {
		data, err := vppb.MarshalTimeline(res.Timeline)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*timelineP, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *timelineP)
	}

	if *contention {
		rep, err := vppb.Analyze(res.Timeline)
		if err != nil {
			return err
		}
		// Rank by serialization score (how much of the critical path each
		// object must serialize) when the recording supports happens-before
		// analysis; otherwise keep the raw blocking-time order.
		if a, err := vppb.AnalyzeHB(log); err == nil {
			rep.ApplySerialization(a.SerializationScores())
		} else {
			fmt.Fprintf(stderr, "vppb-sim: contention ranked by blocking time only (%v)\n", err)
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, rep.Format(10))
	}

	if *cpuReport {
		rep, err := vppb.AnalyzeCPUs(res.Timeline)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, rep.Format())
	}

	if *perThread {
		ids := make([]vppb.ThreadID, 0, len(res.PerThreadCPU))
		for id := range res.PerThreadCPU {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(stdout, "\n%-6s %-14s %12s %12s %12s\n", "thread", "name", "cpu time", "working", "total")
		for _, id := range ids {
			tt := res.Timeline.Thread(id)
			if tt == nil {
				continue
			}
			fmt.Fprintf(stdout, "T%-5d %-14s %12s %12s %12s\n",
				id, log.ThreadName(id), res.PerThreadCPU[id], tt.WorkTime(), tt.TotalTime())
		}
	}
	return nil
}

// runOptimize answers "what should I deploy on?": it sweeps every
// (policy × CPU count) configuration, sharing simulation prefixes across
// the grid via checkpoints and pruning configurations whose
// happens-before lower bound already loses to the incumbent, and prints
// the ranked grid plus the winner. sweepSpec overrides the CPU grid.
func runOptimize(stdout, stderr io.Writer, log *vppb.Log, prof *vppb.TraceProfile, sweepSpec string) error {
	var sizes []int
	if sweepSpec != "" {
		for _, part := range strings.Split(sweepSpec, ",") {
			cpus, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || cpus < 1 {
				return fmt.Errorf("-sweep wants positive CPU counts, got %q", part)
			}
			sizes = append(sizes, cpus)
		}
	}
	hbA, err := vppb.AnalyzeHB(log)
	if err != nil {
		fmt.Fprintf(stderr, "vppb-sim: optimizing without bound pruning (%v)\n", err)
		hbA = nil
	}
	res, err := vppb.Optimize(context.Background(), prof, hbA, vppb.OptimizeOptions{CPUCounts: sizes})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-8s %6s %16s %16s %8s\n", "policy", "CPUs", "predicted time", "lower bound", "")
	for _, c := range res.Candidates {
		note := ""
		if c.Pruned {
			note = "pruned"
		} else if c.ResumedFromEvents > 0 {
			note = fmt.Sprintf("resumed@%d", c.ResumedFromEvents)
		}
		dur := "-"
		if !c.Pruned {
			dur = c.Duration.String()
		}
		fmt.Fprintf(stdout, "%-8s %6d %16s %16s %8s\n", c.Policy, c.CPUs, dur, c.LowerBound, note)
	}
	fmt.Fprintf(stdout, "\nwinner: %s on %d CPUs (predicted %s); %d of %d configurations simulated, %d pruned\n",
		res.Winner.Policy, res.Winner.CPUs, res.Winner.Duration, res.Simulated, len(res.Candidates), res.Pruned)
	return nil
}

// runSweep prints one prediction per machine size — the paper's core use
// case of asking "what if I had N processors?" for several N at once. The
// sweep points and the uniprocessor baseline all replay one shared
// profile concurrently; rows print in the order the sizes were given. The
// baseline shares every non-CPU parameter of the swept machine (-lwps,
// -commdelay, overrides), so the printed speed-ups isolate the processor
// count.
func runSweep(stdout io.Writer, prof *vppb.TraceProfile, spec string, base vppb.Machine) error {
	var sizes []int
	for _, part := range strings.Split(spec, ",") {
		cpus, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || cpus < 1 {
			return fmt.Errorf("-sweep wants positive CPU counts, got %q", part)
		}
		sizes = append(sizes, cpus)
	}
	// Machine 0 is the baseline; the sweep points follow in input order.
	machines := make([]vppb.Machine, 0, len(sizes)+1)
	machines = append(machines, base.Uniprocessor())
	for _, cpus := range sizes {
		m := base
		m.CPUs = cpus
		machines = append(machines, m)
	}
	results, err := vppb.SimulateMany(prof, machines)
	if err != nil {
		return err
	}
	uni := results[0]
	fmt.Fprintf(stdout, "%6s %16s %10s\n", "CPUs", "predicted time", "speed-up")
	for i, cpus := range sizes {
		res := results[i+1]
		fmt.Fprintf(stdout, "%6d %16s %9.2fx\n", cpus, res.Duration, vppb.Speedup(uni.Duration, res.Duration))
	}
	return nil
}
