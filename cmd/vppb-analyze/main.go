// Command vppb-analyze runs the happens-before analysis over a recorded
// log: the machine-independent speed-up upper bound (total work divided by
// the critical path), the critical path itself attributed to source lines
// and synchronization objects, and the lock-order graph whose cycles flag
// potential deadlocks the recorded run happened not to hit.
//
// Where vppb-sim answers "how fast on N processors?", vppb-analyze answers
// "how fast on *any* number of processors, and what stops it from being
// faster?" — the bound is printed next to the Simulator's per-CPU
// predictions so the two can be read together.
//
// Usage:
//
//	vppb-analyze -log prodcons.log                     # bound + prediction sweep
//	vppb-analyze -log prodcons.log -critpath -top 5    # top path sites and scores
//	vppb-analyze -log app.log -lockorder               # potential deadlocks
//	vppb-analyze -log trace.out -format gotrace -bound # real Go program, from `go test -trace`
//	vppb-analyze -log app.log -json > report.json      # machine-readable
//	vppb-analyze -log app.log -flow -width 120         # flow graph, path in '#'
//	vppb-analyze -log app.log -svg app.svg             # flow graph with overlay
//	vppb-analyze -log damaged.log -repair              # print every applied fix
//	vppb-analyze -log damaged.log -strict              # refuse corrupt input
//
// A structurally invalid log is repaired automatically before analysis,
// exactly as vppb-sim does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vppb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath   = fs.String("log", "", "recorded log file (required)")
		format    = fs.String("format", "auto", "input trace format: auto | vppb | gotrace (a Go runtime execution trace)")
		cpusList  = fs.String("cpus", "2,4,8", "comma-separated CPU counts for the prediction sweep")
		bound     = fs.Bool("bound", false, "print only the one-line speed-up bound")
		boundAt   = fs.String("bound-at", "", "comma-separated CPU counts: print the speed-up bound clamped at each count, with no simulation (honours -json)")
		critpath  = fs.Bool("critpath", false, "print the critical-path report (top sites and serialization scores)")
		lockorder = fs.Bool("lockorder", false, "print the lock-order graph and potential deadlocks")
		top       = fs.Int("top", 10, "number of sites/objects/scores to print")
		jsonOut   = fs.Bool("json", false, "emit the full analysis as JSON instead of text")
		flow      = fs.Bool("flow", false, "draw the execution flow graph of the replay with the critical path highlighted")
		width     = fs.Int("width", 100, "flow graph width in columns")
		svgPath   = fs.String("svg", "", "write the replay's flow graph with the critical-path overlay to this SVG file")
		repair    = fs.Bool("repair", false, "print the full repair report when the log needs recovery")
		strict    = fs.Bool("strict", false, "fail on a corrupt log instead of repairing it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("missing -log")
	}
	if *strict && *repair {
		return fmt.Errorf("-strict and -repair are mutually exclusive")
	}
	cpuCounts, err := parseCPUList(*cpusList)
	if err != nil {
		return err
	}

	if err := vppb.CheckLogFormat(*format); err != nil {
		return err
	}
	log, err := vppb.ReadLogFormat(*logPath, *format)
	if err != nil {
		return fmt.Errorf("%s: %w", *logPath, err)
	}
	if verr := log.Validate(); verr != nil {
		if *strict {
			return fmt.Errorf("%s: corrupt log: %w", *logPath, verr)
		}
		repaired, rep, rerr := vppb.RepairLog(log)
		if rerr != nil {
			return fmt.Errorf("%s: %w", *logPath, rerr)
		}
		if *repair {
			fmt.Fprintf(stderr, "vppb-analyze: %s: corrupt log (%v)\n", *logPath, verr)
			fmt.Fprint(stderr, rep.String())
		} else {
			fmt.Fprintf(stderr, "vppb-analyze: %s: corrupt log repaired: %s (-repair for details, -strict to fail)\n",
				*logPath, rep.Summary())
		}
		log = repaired
	}

	a, err := vppb.AnalyzeHB(log)
	if err != nil {
		return err
	}

	if *boundAt != "" {
		counts, err := parseCPUList(*boundAt)
		if err != nil {
			return fmt.Errorf("-bound-at: %w", err)
		}
		return printBoundAt(stdout, log, a, counts, *jsonOut)
	}

	if *jsonOut {
		data, err := a.FormatJSON(*top)
		if err != nil {
			return err
		}
		stdout.Write(data)
		io.WriteString(stdout, "\n")
		return nil
	}

	if *bound {
		io.WriteString(stdout, a.FormatBound())
		return nil
	}

	// Default header: the bound next to the Simulator's per-CPU
	// predictions, so the machine-independent ceiling and the concrete
	// what-if numbers read side by side.
	fmt.Fprintf(stdout, "program            %s\n", log.Header.Program)
	fmt.Fprintf(stdout, "events             %d over %d threads\n", len(log.Events), len(log.Threads))
	io.WriteString(stdout, a.FormatBound())
	fmt.Fprintf(stdout, "\n%6s %18s %13s\n", "CPUs", "predicted speed-up", "upper bound")
	for _, cpus := range cpuCounts {
		sp, err := vppb.PredictSpeedup(log, vppb.Machine{CPUs: cpus})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%6d %17.2fx %12.2fx\n", cpus, sp, a.BoundAt(cpus))
	}

	if *critpath {
		io.WriteString(stdout, "\n")
		io.WriteString(stdout, a.FormatCritPath(*top))
	}
	if *lockorder {
		io.WriteString(stdout, "\n")
		io.WriteString(stdout, a.FormatLockOrder())
	}

	if *flow || *svgPath != "" {
		// The overlay highlights the replayed execution at the largest
		// swept machine size.
		cpus := cpuCounts[len(cpuCounts)-1]
		res, err := vppb.Simulate(log, vppb.Machine{CPUs: cpus})
		if err != nil {
			return err
		}
		view, err := vppb.NewView(res.Timeline)
		if err != nil {
			return err
		}
		overlay := vppb.CritOverlay(a.PathRecords())
		if *flow {
			fmt.Fprintf(stdout, "\npredicted execution on %d CPUs:\n", cpus)
			io.WriteString(stdout, vppb.RenderASCII(view, vppb.ASCIIOptions{Width: *width, Overlay: overlay}))
		}
		if *svgPath != "" {
			svg := vppb.RenderSVG(view, vppb.SVGOptions{
				Title:   fmt.Sprintf("%s on %d CPUs — critical path", log.Header.Program, cpus),
				Overlay: overlay,
			})
			if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", *svgPath)
		}
	}
	return nil
}

// printBoundAt prints the machine-independent speed-up bound clamped at
// each requested CPU count — max(CritPath, Work/c) as a ratio — without
// running a single simulation. It is the cheap first look /v1/optimize
// and vppb-sim -optimize use to prune configurations.
func printBoundAt(stdout io.Writer, log *vppb.Log, a *vppb.HBAnalysis, counts []int, jsonOut bool) error {
	if jsonOut {
		type row struct {
			CPUs  int     `json:"cpus"`
			Bound float64 `json:"bound"`
		}
		doc := struct {
			Program  string  `json:"program"`
			WorkUS   int64   `json:"work_us"`
			CritUS   int64   `json:"crit_path_us"`
			Bound    float64 `json:"bound"`
			BoundsAt []row   `json:"bounds_at"`
		}{log.Header.Program, int64(a.Work), int64(a.CritPath), a.Bound(), make([]row, 0, len(counts))}
		for _, c := range counts {
			doc.BoundsAt = append(doc.BoundsAt, row{c, a.BoundAt(c)})
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		stdout.Write(append(data, '\n'))
		return nil
	}
	fmt.Fprintf(stdout, "program            %s\n", log.Header.Program)
	fmt.Fprintf(stdout, "work / crit path   %s / %s (bound %.2fx)\n", a.Work, a.CritPath, a.Bound())
	fmt.Fprintf(stdout, "\n%6s %13s\n", "CPUs", "upper bound")
	for _, c := range counts {
		fmt.Fprintf(stdout, "%6d %12.2fx\n", c, a.BoundAt(c))
	}
	return nil
}

func parseCPUList(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cpus wants positive CPU counts, got %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
