package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

func fixtureLog(t *testing.T, workload string, prm vppb.WorkloadParams) string {
	t.Helper()
	log, err := vppb.RecordWorkload(workload, prm)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), workload+".bin")
	if err := vppb.WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestBoundNextToPredictions(t *testing.T) {
	path := fixtureLog(t, "prodcons", vppb.WorkloadParams{Scale: 0.2})
	out, _, err := runCmd(t, "-log", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"speed-up upper bound", "(serialized on buffer)",
		"predicted speed-up", "upper bound", "program            prodcons",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoundOnly(t *testing.T) {
	path := fixtureLog(t, "example", vppb.WorkloadParams{})
	out, _, err := runCmd(t, "-log", path, "-bound")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speed-up upper bound") || strings.Contains(out, "predicted") {
		t.Fatalf("-bound output wrong:\n%s", out)
	}
}

func TestCritPathNamesBufferSite(t *testing.T) {
	path := fixtureLog(t, "prodcons", vppb.WorkloadParams{Scale: 0.2})
	out, _, err := runCmd(t, "-log", path, "-critpath", "-top", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"top critical-path sites:", "serialization scores", "buffer"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLockOrderReport(t *testing.T) {
	path := fixtureLog(t, "lockorder", vppb.WorkloadParams{})
	out, _, err := runCmd(t, "-log", path, "-lockorder")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lock-order graph", "POTENTIAL DEADLOCK"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONReport(t *testing.T) {
	path := fixtureLog(t, "lockorder", vppb.WorkloadParams{})
	out, _, err := runCmd(t, "-log", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Program  string  `json:"program"`
		Bound    float64 `json:"speedup_bound"`
		Deadlock bool    `json:"potential_deadlock"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Program != "lockorder" || rep.Bound < 1 || !rep.Deadlock {
		t.Fatalf("report = %+v", rep)
	}
}

// TestJSONDeterministic: two runs over the same log produce byte-identical
// -json output — no map-iteration order leaks into the report.
func TestJSONDeterministic(t *testing.T) {
	path := fixtureLog(t, "prodcons", vppb.WorkloadParams{Scale: 0.2, Threads: 4})
	first, _, err := runCmd(t, "-log", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := runCmd(t, "-log", path, "-json")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("two identical -json runs differ:\n--- first\n%s--- second\n%s", first, second)
	}
}

func TestFlowAndSVGOverlay(t *testing.T) {
	path := fixtureLog(t, "prodcons", vppb.WorkloadParams{Scale: 0.2})
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	out, _, err := runCmd(t, "-log", path, "-flow", "-width", "60", "-cpus", "2,4", "-svg", svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#=critical path") || !strings.Contains(out, "predicted execution on 4 CPUs") {
		t.Fatalf("flow output wrong:\n%s", out)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "critical path highlighted") {
		t.Fatal("SVG lacks the overlay legend")
	}
}

func TestBadFlags(t *testing.T) {
	if _, _, err := runCmd(t); err == nil {
		t.Fatal("missing -log accepted")
	}
	if _, _, err := runCmd(t, "-log", "/nonexistent"); err == nil {
		t.Fatal("unreadable log accepted")
	}
	path := fixtureLog(t, "example", vppb.WorkloadParams{})
	if _, _, err := runCmd(t, "-log", path, "-cpus", "0"); err == nil {
		t.Fatal("-cpus 0 accepted")
	}
	if _, _, err := runCmd(t, "-log", path, "-strict", "-repair"); err == nil {
		t.Fatal("-strict -repair accepted")
	}
}

func TestRepairFlow(t *testing.T) {
	// Damage a valid log with the fault injector and check auto-repair
	// vs -strict.
	log, err := vppb.RecordWorkload("example", vppb.WorkloadParams{})
	if err != nil {
		t.Fatal(err)
	}
	damaged, _, err := vppb.CorruptLog(log, "drop-after", 7)
	if err != nil {
		t.Fatal(err)
	}
	if damaged.Validate() == nil {
		t.Fatal("fault injection produced a valid log")
	}
	path := filepath.Join(t.TempDir(), "damaged.bin")
	if err := vppb.WriteLog(path, damaged); err != nil {
		t.Fatal(err)
	}
	out, errOut, err := runCmd(t, "-log", path)
	if err != nil {
		t.Fatalf("auto-repair failed: %v", err)
	}
	if !strings.Contains(errOut, "repaired") {
		t.Errorf("stderr lacks the repair note: %s", errOut)
	}
	if !strings.Contains(out, "speed-up upper bound") {
		t.Errorf("repaired analysis missing:\n%s", out)
	}
	if _, _, err := runCmd(t, "-log", path, "-strict"); err == nil {
		t.Fatal("-strict accepted a corrupt log")
	}
}
