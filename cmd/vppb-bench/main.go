// Command vppb-bench regenerates the paper's evaluation: Table 1, figures
// 2, 4 and 5, the section-5 case study (figures 6 and 7), the section-4
// intrusion and log-size measurements, and the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	vppb-bench -experiment all -out results/
//	vppb-bench -experiment table1
//	vppb-bench -experiment case5 -runs 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vppb"
	"vppb/internal/experiments"
)

// experimentNames in presentation order.
var experimentNames = []string{
	"table1", "fig2", "fig4", "fig5", "case5", "overhead", "logstats",
	"bound", "commdelay", "lwps", "io", "faults",
}

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-bench:", err)
		os.Exit(1)
	}
}

func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which = fs.String("experiment", "all", "experiment to run: all | "+joinNames())
		scale = fs.Float64("scale", 1.0, "problem-size multiplier")
		runs  = fs.Int("runs", 5, "reference executions per Table-1 cell")
		out   = fs.String("out", "", "directory for SVG artifacts (omit to skip writing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{Scale: *scale, Runs: *runs}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	check := fail
	run := func(name string) {
		if firstErr != nil {
			return
		}
		fmt.Fprintf(stdout, "==> %s\n\n", name)
		switch name {
		case "table1":
			res, err := vppb.ExperimentTable1(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "fig2":
			res, err := vppb.ExperimentFig2(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "fig4":
			res, err := vppb.ExperimentFig4(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "fig5":
			res, err := vppb.ExperimentFig5(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
				fail(writeSVG(stderr, *out, "fig5.svg", res.SVG))
			}
		case "case5":
			res, err := vppb.ExperimentCase5(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
				fail(writeSVG(stderr, *out, "fig6.svg", res.NaiveSVG))
				fail(writeSVG(stderr, *out, "fig7.svg", res.ImprovedSVG))
			}
		case "overhead":
			res, err := vppb.ExperimentOverhead(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "logstats":
			res, err := vppb.ExperimentLogStats(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "bound":
			res, err := vppb.AblationBound(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "commdelay":
			res, err := vppb.AblationCommDelay(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "lwps":
			res, err := vppb.AblationLWPs(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "io":
			res, err := vppb.ExperimentIO(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		case "faults":
			res, err := vppb.ExperimentFaults(opts)
			check(err)
			if err == nil {
				fmt.Fprintln(stdout, res.Report)
			}
		default:
			fail(fmt.Errorf("unknown experiment %q (want all | %s)", name, joinNames()))
		}
	}

	if *which == "all" {
		for _, name := range experimentNames {
			run(name)
		}
		return firstErr
	}
	run(*which)
	return firstErr
}

func writeSVG(stderr io.Writer, dir, name, svg string) error {
	if dir == "" || svg == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func joinNames() string {
	s := ""
	for i, n := range experimentNames {
		if i > 0 {
			s += " | "
		}
		s += n
	}
	return s
}
