// Command vppb-bench regenerates the paper's evaluation: Table 1, figures
// 2, 4 and 5, the section-5 case study (figures 6 and 7), the section-4
// intrusion and log-size measurements, and the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	vppb-bench -experiment all -out results/
//	vppb-bench -experiment table1
//	vppb-bench -experiment case5 -runs 5
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vppb"
	"vppb/internal/experiments"
	"vppb/internal/par"
)

// experimentNames in presentation order.
var experimentNames = []string{
	"table1", "bounds", "fig2", "fig4", "fig5", "case5", "overhead",
	"logstats", "bound", "commdelay", "lwps", "io", "faults", "policies",
	"chaos", "simspeed", "optimize", "serve",
}

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-bench:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks an invocation mistake; the process exits with status 2,
// the conventional bad-command-line code.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// exitCode maps an error from runMain to a process exit status.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which    = fs.String("experiment", "all", "experiment to run: all | "+joinNames())
		scale    = fs.Float64("scale", 1.0, "problem-size multiplier")
		runs     = fs.Int("runs", 5, "reference executions per Table-1 cell")
		out      = fs.String("out", "", "directory for SVG artifacts (omit to skip writing)")
		jsonOut  = fs.Bool("json", false, "additionally write BENCH_<experiment>.json with the structured results and wall time")
		baseline = fs.String("baseline", "", "committed BENCH_table1.json to compare the table1 wall time against")
		policy   = fs.String("policy", "", "scheduling policy for every machine in the experiments: "+strings.Join(vppb.SchedulingPolicies(), ", ")+" (default \"ts\"; the policies experiment sweeps all of them)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := vppb.CheckPolicy(*policy); err != nil {
		return usageError{fmt.Errorf("-policy: %w", err)}
	}

	opts := experiments.Options{Scale: *scale, Runs: *runs, Policy: *policy}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	names := []string{*which}
	if *which == "all" {
		names = experimentNames
	}

	// Evaluate the experiments concurrently on a bounded worker pool, then
	// emit reports and artifacts strictly in presentation order, so the
	// output is byte-identical to a sequential run.
	results := make([]benchResult, len(names))
	if err := par.ForEach(len(names), 0, func(i int) error {
		results[i] = runExperiment(names[i], opts)
		return nil
	}); err != nil {
		return err
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for i, name := range names {
		if firstErr != nil {
			break
		}
		r := results[i]
		fail(r.err)
		if r.err != nil {
			break
		}
		fmt.Fprintf(stdout, "==> %s\n\n", name)
		fmt.Fprintln(stdout, r.report)
		for _, svg := range r.svgs {
			fail(writeSVG(stderr, *out, svg.name, svg.data))
		}
		if *jsonOut {
			fail(writeBenchJSON(stderr, *out, name, opts, r.wall, r.report, r.payload))
		}
		if *baseline != "" && name == "table1" {
			fail(compareBaseline(stdout, *baseline, r.wall))
		}
	}
	return firstErr
}

type svgArtifact struct {
	name string
	data string
}

// benchResult is one experiment's evaluation: the human report, the
// structured -json payload, SVG artifacts, wall time, or the failure.
type benchResult struct {
	report  string
	payload any
	svgs    []svgArtifact
	wall    time.Duration
	err     error
}

// runExperiment evaluates one named experiment. It only computes — all
// printing and file writing happens afterwards, in presentation order.
func runExperiment(name string, opts experiments.Options) benchResult {
	started := time.Now()
	var r benchResult
	switch name {
	case "table1":
		res, e := vppb.ExperimentTable1(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res.Table
		}
	case "bounds":
		res, e := vppb.ExperimentBounds(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res.Rows
		}
	case "fig2":
		res, e := vppb.ExperimentFig2(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "fig4":
		res, e := vppb.ExperimentFig4(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "fig5":
		res, e := vppb.ExperimentFig5(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
			r.svgs = append(r.svgs, svgArtifact{"fig5.svg", res.SVG})
		}
	case "case5":
		res, e := vppb.ExperimentCase5(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
			// The SVGs go to -out; the JSON keeps the numbers only.
			r.payload = map[string]float64{
				"naive_gain":    res.NaiveGain,
				"improved_pred": res.ImprovedPred,
				"improved_real": res.ImprovedReal,
				"error":         res.Error,
			}
			r.svgs = append(r.svgs,
				svgArtifact{"fig6.svg", res.NaiveSVG},
				svgArtifact{"fig7.svg", res.ImprovedSVG})
		}
	case "overhead":
		res, e := vppb.ExperimentOverhead(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res.Rows
		}
	case "logstats":
		res, e := vppb.ExperimentLogStats(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res.Rows
		}
	case "bound":
		res, e := vppb.AblationBound(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "commdelay":
		res, e := vppb.AblationCommDelay(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "lwps":
		res, e := vppb.AblationLWPs(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "io":
		res, e := vppb.ExperimentIO(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "faults":
		res, e := vppb.ExperimentFaults(opts)
		r.err = e
		if e == nil {
			r.report = res.Report
		}
	case "policies":
		res, e := vppb.ExperimentPolicySweep(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res.Rows
		}
	case "chaos":
		res, e := vppb.ExperimentChaos(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res
		}
	case "simspeed":
		res, e := vppb.ExperimentSimSpeed(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res
		}
	case "optimize":
		res, e := vppb.ExperimentOptimize(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res
		}
	case "serve":
		res, e := vppb.ExperimentServe(opts)
		r.err = e
		if e == nil {
			r.report, r.payload = res.Report, res
		}
	default:
		r.err = fmt.Errorf("unknown experiment %q (want all | %s)", name, joinNames())
	}
	r.wall = time.Since(started)
	return r
}

// compareBaseline reads a previously committed BENCH_table1.json and
// prints a benchstat-style old vs new wall-time line, failing on a
// malformed baseline but never on a slowdown (CI surfaces the delta; a
// human judges it).
func compareBaseline(stdout io.Writer, path string, wall time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var doc struct {
		WallSeconds float64 `json:"wall_seconds"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	if doc.WallSeconds <= 0 {
		return fmt.Errorf("-baseline %s: no wall_seconds recorded", path)
	}
	delta := (wall.Seconds() - doc.WallSeconds) / doc.WallSeconds * 100
	fmt.Fprintf(stdout, "table1 wall time: baseline %.2fs -> now %.2fs (%+.1f%%)\n\n",
		doc.WallSeconds, wall.Seconds(), delta)
	return nil
}

// writeBenchJSON stores one experiment's structured results as
// BENCH_<experiment>.json in the -out directory (or the working directory
// when -out is unset), so CI and regression tooling can diff numbers
// without parsing the text reports.
func writeBenchJSON(stderr io.Writer, dir, name string, opts experiments.Options, wall time.Duration, report string, payload any) error {
	doc := struct {
		Experiment  string  `json:"experiment"`
		Scale       float64 `json:"scale"`
		Runs        int     `json:"runs"`
		WallSeconds float64 `json:"wall_seconds"`
		Data        any     `json:"data,omitempty"`
		Report      string  `json:"report"`
	}{name, opts.Scale, opts.Runs, wall.Seconds(), payload, report}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func writeSVG(stderr io.Writer, dir, name, svg string) error {
	if dir == "" || svg == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func joinNames() string {
	s := ""
	for i, n := range experimentNames {
		if i > 0 {
			s += " | "
		}
		s += n
	}
	return s
}
