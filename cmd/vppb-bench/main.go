// Command vppb-bench regenerates the paper's evaluation: Table 1, figures
// 2, 4 and 5, the section-5 case study (figures 6 and 7), the section-4
// intrusion and log-size measurements, and the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	vppb-bench -experiment all -out results/
//	vppb-bench -experiment table1
//	vppb-bench -experiment case5 -runs 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vppb"
	"vppb/internal/experiments"
)

// experimentNames in presentation order.
var experimentNames = []string{
	"table1", "bounds", "fig2", "fig4", "fig5", "case5", "overhead",
	"logstats", "bound", "commdelay", "lwps", "io", "faults",
}

func main() {
	if err := runMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vppb-bench:", err)
		os.Exit(1)
	}
}

func runMain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vppb-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which   = fs.String("experiment", "all", "experiment to run: all | "+joinNames())
		scale   = fs.Float64("scale", 1.0, "problem-size multiplier")
		runs    = fs.Int("runs", 5, "reference executions per Table-1 cell")
		out     = fs.String("out", "", "directory for SVG artifacts (omit to skip writing)")
		jsonOut = fs.Bool("json", false, "additionally write BENCH_<experiment>.json with the structured results and wall time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{Scale: *scale, Runs: *runs}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	run := func(name string) {
		if firstErr != nil {
			return
		}
		fmt.Fprintf(stdout, "==> %s\n\n", name)
		started := time.Now()
		// Every driver yields a human report plus the structured result
		// the -json artifact serializes.
		var (
			report  string
			payload any
			err     error
		)
		switch name {
		case "table1":
			res, e := vppb.ExperimentTable1(opts)
			err = e
			if e == nil {
				report, payload = res.Report, res.Table
			}
		case "bounds":
			res, e := vppb.ExperimentBounds(opts)
			err = e
			if e == nil {
				report, payload = res.Report, res.Rows
			}
		case "fig2":
			res, e := vppb.ExperimentFig2(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "fig4":
			res, e := vppb.ExperimentFig4(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "fig5":
			res, e := vppb.ExperimentFig5(opts)
			err = e
			if e == nil {
				report = res.Report
				fail(writeSVG(stderr, *out, "fig5.svg", res.SVG))
			}
		case "case5":
			res, e := vppb.ExperimentCase5(opts)
			err = e
			if e == nil {
				report = res.Report
				// The SVGs go to -out; the JSON keeps the numbers only.
				payload = map[string]float64{
					"naive_gain":    res.NaiveGain,
					"improved_pred": res.ImprovedPred,
					"improved_real": res.ImprovedReal,
					"error":         res.Error,
				}
				fail(writeSVG(stderr, *out, "fig6.svg", res.NaiveSVG))
				fail(writeSVG(stderr, *out, "fig7.svg", res.ImprovedSVG))
			}
		case "overhead":
			res, e := vppb.ExperimentOverhead(opts)
			err = e
			if e == nil {
				report, payload = res.Report, res.Rows
			}
		case "logstats":
			res, e := vppb.ExperimentLogStats(opts)
			err = e
			if e == nil {
				report, payload = res.Report, res.Rows
			}
		case "bound":
			res, e := vppb.AblationBound(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "commdelay":
			res, e := vppb.AblationCommDelay(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "lwps":
			res, e := vppb.AblationLWPs(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "io":
			res, e := vppb.ExperimentIO(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		case "faults":
			res, e := vppb.ExperimentFaults(opts)
			err = e
			if e == nil {
				report = res.Report
			}
		default:
			fail(fmt.Errorf("unknown experiment %q (want all | %s)", name, joinNames()))
			return
		}
		fail(err)
		if err != nil {
			return
		}
		fmt.Fprintln(stdout, report)
		if *jsonOut {
			fail(writeBenchJSON(stderr, *out, name, opts, time.Since(started), report, payload))
		}
	}

	if *which == "all" {
		for _, name := range experimentNames {
			run(name)
		}
		return firstErr
	}
	run(*which)
	return firstErr
}

// writeBenchJSON stores one experiment's structured results as
// BENCH_<experiment>.json in the -out directory (or the working directory
// when -out is unset), so CI and regression tooling can diff numbers
// without parsing the text reports.
func writeBenchJSON(stderr io.Writer, dir, name string, opts experiments.Options, wall time.Duration, report string, payload any) error {
	doc := struct {
		Experiment  string  `json:"experiment"`
		Scale       float64 `json:"scale"`
		Runs        int     `json:"runs"`
		WallSeconds float64 `json:"wall_seconds"`
		Data        any     `json:"data,omitempty"`
		Report      string  `json:"report"`
	}{name, opts.Scale, opts.Runs, wall.Seconds(), payload, report}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func writeSVG(stderr io.Writer, dir, name, svg string) error {
	if dir == "" || svg == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func joinNames() string {
	s := ""
	for i, n := range experimentNames {
		if i > 0 {
			s += " | "
		}
		s += n
	}
	return s
}
