package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := runMain(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestUnknownExperiment(t *testing.T) {
	if _, _, err := runCmd(t, "-experiment", "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig2Experiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "fig2", "-scale", "0.2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"==> fig2", "thr_create thr_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig5WritesSVG(t *testing.T) {
	dir := t.TempDir()
	out, errOut, err := runCmd(t, "-experiment", "fig5", "-scale", "0.2", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution flow") {
		t.Error("no graphs in report")
	}
	if !strings.Contains(errOut, "fig5.svg") {
		t.Errorf("stderr = %q", errOut)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5.svg")); err != nil {
		t.Fatal(err)
	}
}

func TestLogStatsExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "logstats", "-scale", "0.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ocean", "events/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestIOExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "io", "-scale", "0.2", "-runs", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dbserver") {
		t.Errorf("output missing dbserver:\n%s", out)
	}
}

func TestExperimentNamesAllWired(t *testing.T) {
	// Every advertised experiment must be dispatchable (run them at tiny
	// scale where cheap; table1/case5/overhead are covered by the
	// experiments package tests and would dominate runtime here).
	cheap := map[string]bool{"fig2": true, "fig4": true, "fig5": true, "logstats": true,
		"bound": true, "commdelay": true, "lwps": true}
	for _, name := range experimentNames {
		if !cheap[name] {
			continue
		}
		if _, _, err := runCmd(t, "-experiment", name, "-scale", "0.1", "-runs", "1"); err != nil {
			t.Errorf("experiment %s failed: %v", name, err)
		}
	}
}
