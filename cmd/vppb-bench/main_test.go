package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vppb"
)

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := runMain(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestUnknownExperiment(t *testing.T) {
	if _, _, err := runCmd(t, "-experiment", "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig2Experiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "fig2", "-scale", "0.2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"==> fig2", "thr_create thr_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig5WritesSVG(t *testing.T) {
	dir := t.TempDir()
	out, errOut, err := runCmd(t, "-experiment", "fig5", "-scale", "0.2", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution flow") {
		t.Error("no graphs in report")
	}
	if !strings.Contains(errOut, "fig5.svg") {
		t.Errorf("stderr = %q", errOut)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5.svg")); err != nil {
		t.Fatal(err)
	}
}

func TestLogStatsExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "logstats", "-scale", "0.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ocean", "events/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestIOExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "io", "-scale", "0.2", "-runs", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dbserver") {
		t.Errorf("output missing dbserver:\n%s", out)
	}
}

func TestExperimentNamesAllWired(t *testing.T) {
	// Every advertised experiment must be dispatchable (run them at tiny
	// scale where cheap; table1/case5/overhead are covered by the
	// experiments package tests and would dominate runtime here).
	cheap := map[string]bool{"fig2": true, "fig4": true, "fig5": true, "logstats": true,
		"bound": true, "commdelay": true, "lwps": true}
	for _, name := range experimentNames {
		if !cheap[name] {
			continue
		}
		if _, _, err := runCmd(t, "-experiment", name, "-scale", "0.1", "-runs", "1"); err != nil {
			t.Errorf("experiment %s failed: %v", name, err)
		}
	}
}

// TestPoliciesExperimentJSON runs the policy sweep end to end and checks
// the BENCH_policies.json payload: one row per registered policy per CPU
// count, with positive durations and self-normalized speed-ups.
func TestPoliciesExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	out, errOut, err := runCmd(t, "-experiment", "policies", "-scale", "0.1", "-runs", "1",
		"-json", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Policy sweep") {
		t.Errorf("report missing:\n%s", out)
	}
	if !strings.Contains(errOut, "BENCH_policies.json") {
		t.Errorf("stderr = %q", errOut)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_policies.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Data       []struct {
			Policy     string  `json:"policy"`
			CPUs       int     `json:"cpus"`
			DurationUS int64   `json:"duration_us"`
			Speedup    float64 `json:"speedup"`
		} `json:"data"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	policies := vppb.SchedulingPolicies()
	wantRows := len(policies) * 3 // default CPUCounts {2, 4, 8}
	if doc.Experiment != "policies" || len(doc.Data) != wantRows {
		t.Fatalf("experiment %q with %d rows, want policies/%d", doc.Experiment, len(doc.Data), wantRows)
	}
	seen := map[string]int{}
	for _, row := range doc.Data {
		seen[row.Policy]++
		if row.DurationUS <= 0 || row.Speedup <= 0 {
			t.Errorf("%s@%d: duration %d speedup %.2f", row.Policy, row.CPUs, row.DurationUS, row.Speedup)
		}
	}
	for _, p := range policies {
		if seen[p] != 3 {
			t.Errorf("policy %s has %d rows, want 3", p, seen[p])
		}
	}
}

// TestUnknownPolicyRejected: vppb-bench validates -policy up front with a
// usage error (exit status 2) listing the valid names.
func TestUnknownPolicyRejected(t *testing.T) {
	_, _, err := runCmd(t, "-experiment", "fig2", "-policy", "lottery")
	if err == nil {
		t.Fatal("unknown -policy accepted")
	}
	if !strings.Contains(err.Error(), strings.Join(vppb.SchedulingPolicies(), ", ")) {
		t.Errorf("error does not list the valid policies: %v", err)
	}
	if code := exitCode(err); code != 2 {
		t.Errorf("exitCode = %d, want 2", code)
	}
}

// TestPolicyFlagThreadsThrough: a valid -policy reaches the experiment
// options and the cheap experiments still pass under it.
func TestPolicyFlagThreadsThrough(t *testing.T) {
	if _, _, err := runCmd(t, "-experiment", "fig5", "-scale", "0.1", "-runs", "1", "-policy", "fifo"); err != nil {
		t.Fatalf("fig5 under fifo: %v", err)
	}
}

func TestBoundsExperimentJSON(t *testing.T) {
	dir := t.TempDir()
	out, errOut, err := runCmd(t, "-experiment", "bounds", "-scale", "0.05", "-runs", "1",
		"-json", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Critical-path bounds vs Table 1") {
		t.Errorf("report missing:\n%s", out)
	}
	path := filepath.Join(dir, "BENCH_bounds.json")
	if !strings.Contains(errOut, "BENCH_bounds.json") {
		t.Errorf("stderr = %q", errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment  string  `json:"experiment"`
		WallSeconds float64 `json:"wall_seconds"`
		Data        []struct {
			Application string `json:"application"`
			Cells       []struct {
				CPUs      int     `json:"cpus"`
				Bound     float64 `json:"bound"`
				Predicted float64 `json:"predicted"`
			} `json:"cells"`
		} `json:"data"`
		Report string `json:"report"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Experiment != "bounds" || doc.WallSeconds <= 0 || doc.Report == "" {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Data) != 5 {
		t.Fatalf("applications = %d", len(doc.Data))
	}
	for _, row := range doc.Data {
		for _, c := range row.Cells {
			if c.Bound < 1 || c.Predicted < 1 {
				t.Errorf("%s@%d: bound %.2f predicted %.2f", row.Application, c.CPUs, c.Bound, c.Predicted)
			}
		}
	}
}
