// Scheduling-parameter tuning: the Simulator accepts the machine and
// scheduling parameters of the paper's figure 1 (e/f) — number of
// processors, number of LWPs, communication delay, and per-thread binding
// and priority overrides. This example records one program and explores
// those knobs, including the paper's load-balancing use of CPU binding
// (section 3.2) and the bound-thread cost factors (6.7x create, 5.9x
// sync).
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"vppb"
)

func main() {
	// A program with four unequal workers sharing a semaphore-fed queue.
	setup := func(p *vppb.Process) func(*vppb.Thread) {
		work := p.NewSema("work", 0)
		return func(t *vppb.Thread) {
			var ids []vppb.ThreadID
			for i := 0; i < 4; i++ {
				n := vppb.Duration(40+30*i) * vppb.Millisecond
				ids = append(ids, t.Create(func(w *vppb.Thread) {
					work.Wait(w)
					w.Compute(n)
				}, vppb.WithName(fmt.Sprintf("worker-%d", i))))
			}
			for range ids {
				work.Post(t)
			}
			for _, id := range ids {
				t.Join(id)
			}
		}
	}
	rec, _, err := vppb.Record(setup, vppb.RecordOptions{Program: "tuning"})
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, m vppb.Machine) {
		res, err := vppb.Simulate(rec, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %12s\n", label, res.Duration)
	}

	fmt.Println("predicted execution time under different machine parameters:")
	show("2 CPUs", vppb.Machine{CPUs: 2})
	show("4 CPUs", vppb.Machine{CPUs: 4})
	show("4 CPUs, 2 LWPs", vppb.Machine{CPUs: 4, LWPs: 2})
	show("4 CPUs, 500us communication delay", vppb.Machine{CPUs: 4, CommDelay: 500 * vppb.Microsecond})

	// Load balancing by binding (paper section 3.2): pin the two longest
	// workers to their own CPUs so they never migrate or queue.
	show("4 CPUs, long workers pinned to CPUs 2,3", vppb.Machine{
		CPUs: 4,
		Overrides: map[vppb.ThreadID]vppb.Override{
			6: {Binding: vppb.BindCPU, CPU: 2},
			7: {Binding: vppb.BindCPU, CPU: 3},
		},
	})

	// Bound threads pay the paper's cost factors.
	allBound := map[vppb.ThreadID]vppb.Override{}
	for tid := vppb.ThreadID(4); tid <= 7; tid++ {
		allBound[tid] = vppb.Override{Binding: vppb.BindLWP}
	}
	show("4 CPUs, all workers bound to LWPs", vppb.Machine{CPUs: 4, Overrides: allBound})

	// Priority pinning: a pinned priority makes the Simulator ignore the
	// thread's recorded thr_setprio calls.
	hi := 55
	show("4 CPUs, worker-3 pinned to priority 55", vppb.Machine{
		CPUs:      4,
		Overrides: map[vppb.ThreadID]vppb.Override{7: {Priority: &hi}},
	})
}
