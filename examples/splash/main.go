// SPLASH-2 prediction sweep: record each of the five SPLASH-2 analogues
// of the paper's Table 1 (one recording per processor count, exactly as
// the paper did, since the programs create one thread per processor) and
// predict their speed-ups on 2, 4 and 8 processors.
//
// The speed-up baseline is the single-thread uni-processor execution, so
// parallel overhead that grows with the thread count (FFT's transposes,
// Ocean's boundary traffic) shows up as sublinear scaling — exactly the
// shape of the paper's Table 1.
//
// Run with:
//
//	go run ./examples/splash              # all five applications
//	go run ./examples/splash ocean        # one application
package main

import (
	"fmt"
	"log"
	"os"

	"vppb"
)

func main() {
	apps := vppb.SplashWorkloads()
	if len(os.Args) > 1 {
		apps = os.Args[1:]
	}
	scale := 0.25 // keep the demo quick; 1.0 reproduces DESIGN.md numbers

	fmt.Printf("%-14s %14s %14s %14s\n", "application", "2 CPUs", "4 CPUs", "8 CPUs")
	for _, name := range apps {
		// T1: the single-thread program replayed on one processor.
		base, err := vppb.RecordWorkload(name, vppb.WorkloadParams{Threads: 1, Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		uni, err := vppb.Simulate(base, vppb.Machine{CPUs: 1, LWPs: 1})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-14s", name)
		for _, cpus := range []int{2, 4, 8} {
			// One recording per processor count: the program creates one
			// thread per target processor, as SPLASH-2 does.
			rec, err := vppb.RecordWorkload(name, vppb.WorkloadParams{Threads: cpus, Scale: scale})
			if err != nil {
				log.Fatal(err)
			}
			res, err := vppb.Simulate(rec, vppb.Machine{CPUs: cpus})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %13.2fx", vppb.Speedup(uni.Duration, res.Duration))
		}
		fmt.Println()
	}
	fmt.Println("\npaper (real): ocean 1.97/3.87/6.65, water 1.99/3.95/7.67,")
	fmt.Println("              fft 1.55/2.14/2.62, radix 2.00/3.99/7.79, lu 1.79/3.15/4.82")
}
