// I/O-bound server analysis: exercises the I/O extension (the paper's
// section-6 future work). The dbserver workload alternates CPU work with
// FIFO-disk requests; its speed-up saturates at the disks' aggregate
// bandwidth. The example predicts the saturation curve, prints the
// contention report naming the disks as the bottleneck, and writes a
// self-contained HTML report.
//
// Run with:
//
//	go run ./examples/ioserver
package main

import (
	"fmt"
	"log"
	"os"

	"vppb"
)

func main() {
	// Baseline: the single-threaded server on one CPU.
	base, err := vppb.RecordWorkload("dbserver", vppb.WorkloadParams{Threads: 1, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	uni, err := vppb.Simulate(base, vppb.Machine{CPUs: 1, LWPs: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dbserver: predicted speed-up (disk-bound; two FIFO disks)")
	for _, cpus := range []int{2, 4, 8, 16} {
		rec, err := vppb.RecordWorkload("dbserver", vppb.WorkloadParams{Threads: cpus, Scale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		res, err := vppb.Simulate(rec, vppb.Machine{CPUs: cpus})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d CPUs: %5.2fx\n", cpus, vppb.Speedup(uni.Duration, res.Duration))
	}

	// Where does the time go at 8 CPUs? The contention report names the
	// disks.
	rec, err := vppb.RecordWorkload("dbserver", vppb.WorkloadParams{Threads: 8, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := vppb.Simulate(rec, vppb.Machine{CPUs: 8})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := vppb.Analyze(res.Timeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Format(6))

	// A browsable report with both graphs and the tables.
	view, err := vppb.NewView(res.Timeline)
	if err != nil {
		log.Fatal(err)
	}
	page, err := vppb.RenderHTML(view, vppb.HTMLOptions{Title: "dbserver on 8 simulated CPUs"})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("dbserver-report.html", []byte(page), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote dbserver-report.html")
}
