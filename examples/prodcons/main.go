// Producer/consumer walkthrough: the paper's section-5 case study, played
// end to end. The naive program (one mutex around the whole buffer)
// barely gains from eight processors; the Visualizer's graphs show every
// thread serializing on the same mutex; the improved program (a hundred
// sub-buffers with their own locks) reaches a speed-up near 7.75.
//
// Run with:
//
//	go run ./examples/prodcons
package main

import (
	"fmt"
	"log"

	"vppb"
)

func main() {
	// The naive program, recorded on a uni-processor.
	naive, err := vppb.RecordWorkload("prodcons", vppb.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}
	gain, err := vppb.PredictSpeedup(naive, vppb.Machine{CPUs: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive program: predicted to run %.1f%% faster on 8 CPUs (paper: 2.2%%)\n\n", 100*(gain-1))

	// Find the reason with the Visualizer: a slice of the flow graph
	// shows the threads blocking on the same mutex, one after another.
	sim, err := vppb.Simulate(naive, vppb.Machine{CPUs: 8})
	if err != nil {
		log.Fatal(err)
	}
	view, err := vppb.NewView(sim.Timeline)
	if err != nil {
		log.Fatal(err)
	}
	view.SetCompressed(true)
	mid := vppb.Time(sim.Duration / 2)
	if err := view.SetWindow(mid, mid+vppb.Time(sim.Duration/40)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("a slice of the naive program's simulated execution (figure 6):")
	fmt.Println(vppb.RenderASCII(view, vppb.ASCIIOptions{Width: 90, MaxFlowRows: 10}))

	// Click on a blocking event: the popup names the mutex and the source
	// line, pinpointing the bottleneck.
	in := vppb.NewInspector(sim.Timeline)
	threads := view.VisibleThreads()
	if len(threads) > 0 {
		if ref, ok := in.At(threads[0].Info.ID, mid); ok {
			desc, err := in.Describe(ref)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("the event under the mouse:")
			fmt.Println(desc)
		}
	}

	// The improved program: 100 sub-buffers, split insert/fetch locks.
	improved, err := vppb.RecordWorkload("prodconsopt", vppb.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}
	speedup, err := vppb.PredictSpeedup(improved, vppb.Machine{CPUs: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("improved program: predicted speed-up %.2f on 8 CPUs (paper: 7.75, measured 7.90)\n",
		speedup)
}
