// Quickstart: the full VPPB workflow on the paper's figure-2 example
// program — write a multithreaded program against the Solaris-style API,
// record a monitored uni-processor execution, predict the execution on a
// multiprocessor, and draw the two graphs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vppb"
)

func main() {
	// 1. The program: main creates two workers and joins them (figure 2).
	setup := func(p *vppb.Process) func(*vppb.Thread) {
		return func(t *vppb.Thread) {
			worker := func(w *vppb.Thread) {
				w.Compute(200 * vppb.Millisecond) // the thread's work
			}
			t.Compute(50 * vppb.Millisecond) // sequential setup
			a := t.Create(worker, vppb.WithName("thr_a"))
			b := t.Create(worker, vppb.WithName("thr_b"))
			t.Join(a)
			t.Join(b)
		}
	}

	// 2. Record: a monitored execution on one CPU with one LWP.
	rec, _, err := vppb.Record(setup, vppb.RecordOptions{Program: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Recorder output (the paper's figure-2 listing):")
	fmt.Println(vppb.FormatLog(rec))

	// 3. Predict: simulate the recording on machines of growing size.
	for _, cpus := range []int{1, 2, 4} {
		s, err := vppb.PredictSpeedup(rec, vppb.Machine{CPUs: cpus})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted speed-up on %d CPUs: %.2f\n", cpus, s)
	}

	// 4. Visualize: the parallelism and execution flow graphs on 2 CPUs.
	res, err := vppb.Simulate(rec, vppb.Machine{CPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	view, err := vppb.NewView(res.Timeline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(vppb.RenderASCII(view, vppb.ASCIIOptions{Width: 90}))

	// 5. Inspect: the popup for the event nearest the end of main's life.
	in := vppb.NewInspector(res.Timeline)
	if ref, ok := in.At(1, vppb.Time(res.Duration)); ok {
		desc, err := in.Describe(ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("selected event:")
		fmt.Println(desc)
	}
}
