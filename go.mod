module vppb

go 1.22
