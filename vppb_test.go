package vppb

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEndWorkflow exercises the public API exactly the way the README
// quickstart does: write a program, record it, predict, visualize,
// inspect.
func TestEndToEndWorkflow(t *testing.T) {
	setup := func(p *Process) func(*Thread) {
		m := p.NewMutex("lock")
		items := p.NewSema("items", 0)
		return func(th *Thread) {
			consumer := th.Create(func(w *Thread) {
				for i := 0; i < 3; i++ {
					items.Wait(w)
					m.Lock(w)
					w.Compute(5 * Millisecond)
					m.Unlock(w)
				}
			}, WithName("consumer"))
			for i := 0; i < 3; i++ {
				th.Compute(5 * Millisecond)
				items.Post(th)
			}
			th.Join(consumer)
		}
	}

	log, runRes, err := Record(setup, RecordOptions{Program: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if runRes.Threads != 2 {
		t.Fatalf("threads = %d", runRes.Threads)
	}
	if log.Header.Program != "demo" {
		t.Fatalf("program = %q", log.Header.Program)
	}

	// Round trip through a file.
	path := filepath.Join(t.TempDir(), "demo.bin")
	if err := WriteLog(path, log); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Events) != len(log.Events) {
		t.Fatal("file round trip lost events")
	}

	// Predict on two CPUs and check the pipeline overlaps.
	speedup, err := PredictSpeedup(loaded, Machine{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if speedup <= 1.0 || speedup > 2.0 {
		t.Fatalf("speedup = %.2f", speedup)
	}

	res, err := Simulate(loaded, Machine{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(res.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	ascii := RenderASCII(view, ASCIIOptions{Width: 60})
	if !strings.Contains(ascii, "consumer") {
		t.Fatalf("flow graph missing consumer:\n%s", ascii)
	}
	svg := RenderSVG(view, SVGOptions{Title: "demo"})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("no svg output")
	}

	in := NewInspector(res.Timeline)
	ref, ok := in.At(4, 0)
	if !ok {
		t.Fatal("no events for consumer")
	}
	desc, err := in.Describe(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "T4") {
		t.Fatalf("popup: %s", desc)
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	if len(Workloads()) < 8 {
		t.Fatalf("workloads = %v", Workloads())
	}
	if len(SplashWorkloads()) != 5 {
		t.Fatalf("splash = %v", SplashWorkloads())
	}
	w, err := GetWorkload("ocean")
	if err != nil || w.Name != "ocean" {
		t.Fatalf("GetWorkload: %v %v", w, err)
	}
	if _, err := GetWorkload("bogus"); err == nil {
		t.Fatal("bogus workload accepted")
	}
	if _, err := RecordWorkload("bogus", WorkloadParams{}); err == nil {
		t.Fatal("bogus workload recorded")
	}
}

func TestFacadeMetrics(t *testing.T) {
	if Speedup(100*Second, 25*Second) != 4 {
		t.Fatal("Speedup wrong")
	}
	e := PredictionError(6.65, 6.24)
	if e < 0.06 || e > 0.063 {
		t.Fatalf("PredictionError = %v", e)
	}
}

func TestFacadeMarshal(t *testing.T) {
	log, err := RecordWorkload("example", WorkloadParams{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	text := MarshalLogText(log)
	bin := MarshalLogBinary(log)
	if len(text) == 0 || len(bin) == 0 || len(bin) >= len(text) {
		t.Fatalf("marshal sizes: text %d, binary %d", len(text), len(bin))
	}
	if !strings.Contains(FormatLog(log), "thr_create thr_a") {
		t.Fatal("FormatLog missing expected line")
	}
	if log.ComputeStats().Events != len(log.Events) {
		t.Fatal("stats mismatch")
	}
}

func TestFacadeDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.BoundCreateFactor != 6.7 || c.BoundSyncFactor != 5.9 {
		t.Fatalf("paper factors wrong: %+v", c)
	}
}
