// Package vppb is a Go reproduction of VPPB ("Visualization of Parallel
// Program Behaviour", Broberg, Lundberg and Grahn, IPPS/SPDP 1998): a
// performance prediction and visualization tool that, from a single
// monitored uni-processor execution of a multithreaded program, predicts
// and visualizes the program's behaviour on a multiprocessor with any
// number of processors, LWPs and scheduling parameters.
//
// The workflow mirrors the paper's figure 1:
//
//	program --(monitored uni-processor run)--> Log          (Recorder)
//	Log + Machine --------------------------> SimResult     (Simulator)
//	SimResult.Timeline ----------------------> graphs       (Visualizer)
//
// Programs are written against a Solaris-2.x-style thread API provided by
// the virtual-time execution substrate: create a Process, build the
// program with NewMutex / NewSema / NewCond / NewRWLock and a main body
// using Thread methods (Create, Join, Compute, ...), then Record it and
// Simulate the recording:
//
//	setup := func(p *vppb.Process) func(*vppb.Thread) {
//	    m := p.NewMutex("lock")
//	    return func(t *vppb.Thread) {
//	        worker := func(w *vppb.Thread) {
//	            m.Lock(w); w.Compute(5 * vppb.Millisecond); m.Unlock(w)
//	        }
//	        a := t.Create(worker)
//	        t.Join(a)
//	    }
//	}
//	log, _, err := vppb.Record(setup, vppb.RecordOptions{Program: "demo"})
//	res, err := vppb.Simulate(log, vppb.Machine{CPUs: 8})
//	view, err := vppb.NewView(res.Timeline)
//	fmt.Println(vppb.RenderASCII(view, vppb.ASCIIOptions{}))
//
// The workloads of the paper's evaluation (five SPLASH-2 analogues and the
// section-5 producer/consumer case study) ship in the registry reachable
// through Workloads and GetWorkload, and the experiments that regenerate
// every table and figure are exposed via the Experiment functions in this
// package and the vppb-bench command.
package vppb

import (
	"context"

	"vppb/internal/analysis"
	"vppb/internal/core"
	"vppb/internal/experiments"
	"vppb/internal/faultinject"
	"vppb/internal/gotrace"
	"vppb/internal/hb"
	"vppb/internal/ingest"
	"vppb/internal/metrics"
	"vppb/internal/recorder"
	"vppb/internal/sched"
	"vppb/internal/threadlib"
	"vppb/internal/trace"
	"vppb/internal/viz"
	"vppb/internal/vtime"
	"vppb/internal/workloads"
)

// Virtual time.
type (
	// Time is an instant in virtual microseconds.
	Time = vtime.Time
	// Duration is a span of virtual microseconds.
	Duration = vtime.Duration
)

// Common durations.
const (
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Execution substrate (the Solaris-style thread library).
type (
	// Process is a program instance on the virtual-time substrate.
	Process = threadlib.Process
	// ProcessConfig parameterizes a Process.
	ProcessConfig = threadlib.Config
	// CostModel prices thread-library operations.
	CostModel = threadlib.CostModel
	// Thread is the handle a program body receives.
	Thread = threadlib.Thread
	// Mutex, Sema, Cond and RWLock are the synchronization primitives.
	Mutex  = threadlib.Mutex
	Sema   = threadlib.Sema
	Cond   = threadlib.Cond
	RWLock = threadlib.RWLock
	// RunResult summarizes an execution-driven run.
	RunResult = threadlib.Result
)

// NewProcess creates a program instance; see threadlib.NewProcess.
func NewProcess(cfg ProcessConfig) *Process { return threadlib.NewProcess(cfg) }

// DefaultCosts returns the substrate's default cost model.
func DefaultCosts() CostModel { return threadlib.DefaultCosts() }

// Thread creation options.
var (
	WithName     = threadlib.WithName
	WithPriority = threadlib.WithPriority
	Bound        = threadlib.Bound
	BoundToCPU   = threadlib.BoundToCPU
)

// Trace model.
type (
	// Log is a recording — the "recorded information" of figure 1.
	Log = trace.Log
	// Event is one probe firing.
	Event = trace.Event
	// ThreadID identifies a thread (main = 1, created threads from 4).
	ThreadID = trace.ThreadID
	// ObjectID identifies a synchronization object.
	ObjectID = trace.ObjectID
	// Timeline describes an execution for the Visualizer.
	Timeline = trace.Timeline
	// LogStats summarises a recording.
	LogStats = trace.Stats
)

// Recorder.
type (
	// RecordOptions configures a monitored execution.
	RecordOptions = recorder.Options
	// ProgramSetup builds a program against a process.
	ProgramSetup = recorder.Setup
)

// Record performs a monitored uni-processor execution and returns its log.
func Record(setup ProgramSetup, opts RecordOptions) (*Log, *RunResult, error) {
	return recorder.Record(setup, opts)
}

// WriteLog stores a log (binary when the path ends in ".bin", else text).
func WriteLog(path string, log *Log) error { return recorder.WriteFile(path, log) }

// ReadLog loads a log written by WriteLog, auto-detecting the format.
func ReadLog(path string) (*Log, error) { return recorder.ReadFile(path) }

// Trace ingestion formats: native vppb recordings and Go runtime
// execution traces (the `go tool trace` format).
const (
	FormatAuto    = ingest.FormatAuto
	FormatVPPB    = ingest.FormatVPPB
	FormatGoTrace = ingest.FormatGoTrace
)

// ReadLogFormat loads a trace file in the named format; FormatAuto sniffs
// the format from the file's bytes.
func ReadLogFormat(path, format string) (*Log, error) { return ingest.File(path, format) }

// CheckLogFormat validates a -format flag value; the error lists the
// accepted names.
func CheckLogFormat(format string) error { return ingest.CheckFormat(format) }

// DetectLogFormat sniffs the trace format of raw bytes, returning
// FormatVPPB, FormatGoTrace or "" when the bytes match neither.
func DetectLogFormat(data []byte) string { return ingest.Detect(data) }

// ConvertGoTrace rebuilds a Go runtime execution trace as a 1-CPU/1-LWP
// vppb recording: goroutines become threads, block/wake pairs become
// synchronization operations. program names the recording ("gotrace" if
// empty).
func ConvertGoTrace(data []byte, program string) (*Log, error) {
	return gotrace.Convert(data, gotrace.Options{Program: program})
}

// FormatLog renders a log in the paper's figure-2 listing style.
func FormatLog(log *Log) string { return trace.FormatPaper(log) }

// MarshalLogText returns the log's text encoding.
func MarshalLogText(log *Log) []byte { return trace.AppendText(nil, log) }

// MarshalLogBinary returns the log's compact binary encoding.
func MarshalLogBinary(log *Log) []byte { return trace.AppendBinary(nil, log) }

// MarshalTimeline encodes a predicted execution (figure 1's artifact (g))
// for storage; UnmarshalTimeline loads and validates it.
func MarshalTimeline(tl *Timeline) ([]byte, error) { return trace.MarshalTimeline(tl) }

// UnmarshalTimeline decodes a stored execution description.
func UnmarshalTimeline(data []byte) (*Timeline, error) { return trace.UnmarshalTimeline(data) }

// Trace integrity & recovery.
type (
	// RepairStrategy names one recovery pass of RepairLog.
	RepairStrategy = trace.RepairStrategy
	// RepairReport lists every mutation a repair performed.
	RepairReport = trace.RepairReport
	// RepairMutation is one change in a RepairReport.
	RepairMutation = trace.RepairMutation
	// UnrecoverableError names the record a repair could not recover.
	UnrecoverableError = trace.UnrecoverableError
	// CorruptionClass names one way faultinject damages a log.
	CorruptionClass = faultinject.Class
	// CorruptionInjection describes an applied corruption.
	CorruptionInjection = faultinject.Injection
)

// Repair strategies, in pipeline order.
const (
	RepairSort           = trace.RepairSort
	RepairDropDuplicates = trace.RepairDropDuplicates
	RepairClampTimes     = trace.RepairClampTimes
	RepairDropOrphans    = trace.RepairDropOrphans
	RepairSynthesize     = trace.RepairSynthesize
)

// RepairLog recovers a structurally damaged log; with no strategies the
// full pipeline runs. The result passes Log.Validate or the error is an
// *UnrecoverableError.
func RepairLog(log *Log, strategies ...RepairStrategy) (*Log, *RepairReport, error) {
	return trace.Repair(log, strategies...)
}

// AllRepairStrategies lists every repair strategy in pipeline order.
func AllRepairStrategies() []RepairStrategy { return trace.AllRepairStrategies() }

// CorruptLog applies one deterministic corruption to a copy of the log —
// the adversarial half of the integrity test harness.
func CorruptLog(log *Log, class CorruptionClass, seed int64) (*Log, *CorruptionInjection, error) {
	return faultinject.Inject(log, class, seed)
}

// CorruptionClasses lists every corruption class in a stable order.
func CorruptionClasses() []CorruptionClass { return faultinject.Classes() }

// Simulator (the paper's primary contribution).
type (
	// Machine is the simulated hardware and scheduling configuration.
	Machine = core.Machine
	// Override adjusts one thread's binding or priority.
	Override = core.Override
	// SimResult is a predicted execution.
	SimResult = core.Result
	// DeadlockError carries the wait-for graph of a stuck simulation.
	DeadlockError = core.DeadlockError
	// WaitEdge is one thread's entry in a DeadlockError wait-for graph.
	WaitEdge = core.WaitEdge
	// LivelockError reports a simulation spinning without time advance.
	LivelockError = core.LivelockError
	// BudgetError reports an exhausted Machine watchdog budget.
	BudgetError = core.BudgetError
)

// Thread binding overrides.
const (
	BindAsRecorded = core.BindAsRecorded
	BindUnbound    = core.BindUnbound
	BindLWP        = core.BindLWP
	BindCPU        = core.BindCPU
)

// TraceProfile is the immutable per-thread behaviour profile the
// Simulator replays — build it once per log and share it across any
// number of concurrent simulations.
type TraceProfile = trace.Profile

// BuildProfile derives the behaviour profile of a recording. The result
// is read-only: SimulateProfile and SimulateMany never mutate it.
func BuildProfile(log *Log) (*TraceProfile, error) { return trace.BuildProfile(log) }

// Simulate predicts the execution of a recording on machine m.
func Simulate(log *Log, m Machine) (*SimResult, error) { return core.Simulate(log, m) }

// SimulateProfile predicts the execution of a prebuilt behaviour profile
// on machine m, skipping the per-call profile derivation Simulate repeats.
func SimulateProfile(prof *TraceProfile, m Machine) (*SimResult, error) {
	return core.SimulateProfile(prof, m)
}

// SimulateMany predicts one profile on several machines concurrently over
// a bounded worker pool, with results in machine order.
func SimulateMany(prof *TraceProfile, machines []Machine) ([]*SimResult, error) {
	return core.SimulateMany(prof, machines)
}

// SimulateManyCtx is SimulateMany under a context: when ctx is cancelled,
// machines not yet started are skipped and ctx's error is returned. Bound
// an individual simulation's worst case with Machine.MaxSimEvents /
// MaxVirtualTime — a replay already running is not interrupted.
func SimulateManyCtx(ctx context.Context, prof *TraceProfile, machines []Machine) ([]*SimResult, error) {
	return core.SimulateManyCtx(ctx, prof, machines)
}

// Checkpointed simulation: snapshot a replay mid-flight and resume it,
// possibly on a different machine (see core.Checkpoint.PortableTo).
type (
	// SimCheckpoint is a resumable snapshot of a simulation.
	SimCheckpoint = core.Checkpoint
	// CheckpointOptions sets the capture cadence and portability mode.
	CheckpointOptions = core.CheckpointOptions
)

// DefaultCheckpointEvery is the default capture cadence in simulated
// events.
const DefaultCheckpointEvery = core.DefaultCheckpointEvery

// SimulateProfileCheckpointed is SimulateProfile with periodic snapshots
// delivered to opts.Sink.
func SimulateProfileCheckpointed(prof *TraceProfile, m Machine, opts CheckpointOptions) (*SimResult, error) {
	return core.SimulateProfileCheckpointed(prof, m, opts)
}

// ResumeSimulation continues a checkpointed replay to completion on
// machine m — byte-identical to a fresh simulation of the same machine.
// m may differ from the checkpoint's machine when cp.PortableTo(m) allows
// it.
func ResumeSimulation(cp *SimCheckpoint, m Machine) (*SimResult, error) {
	return core.ResumeFrom(cp, m)
}

// Deployment optimization: rank every (policy × CPU count) configuration
// of a grid by predicted execution time, sharing simulation prefixes via
// checkpoints and pruning provably hopeless configurations with the
// happens-before lower bound.
type (
	// OptimizeOptions configures an Optimize sweep.
	OptimizeOptions = analysis.OptimizeOptions
	// OptimizeResult is the ranked outcome.
	OptimizeResult = analysis.OptimizeResult
	// OptimizeCandidate is one grid point's outcome.
	OptimizeCandidate = analysis.Candidate
)

// DefaultOptimizeCPUs is the default CPU grid (the paper's Table 1
// processor counts).
func DefaultOptimizeCPUs() []int {
	return append([]int(nil), analysis.DefaultOptimizeCPUs...)
}

// Optimize sweeps the configuration grid over one behaviour profile. hbA
// supplies the pruning bounds (AnalyzeHB of the same recording); nil
// disables pruning.
func Optimize(ctx context.Context, prof *TraceProfile, hbA *HBAnalysis, opts OptimizeOptions) (*OptimizeResult, error) {
	return analysis.Optimize(ctx, prof, hbA, opts)
}

// DefaultPolicy is the scheduling discipline both engines use when none is
// named: the Solaris TS class driven by the dispatch table.
const DefaultPolicy = sched.Default

// SchedulingPolicies lists the registered scheduling policy names in
// sorted order — valid values for Machine.Policy, ProcessConfig.Policy and
// RecordOptions.Policy.
func SchedulingPolicies() []string { return sched.Names() }

// CheckPolicy reports whether name selects a registered scheduling policy
// (empty selects the default). The error message lists the valid names.
func CheckPolicy(name string) error {
	_, err := sched.New(name)
	return err
}

// Speedup is T1/TP.
func Speedup(t1, tp Duration) float64 { return metrics.Speedup(t1, tp) }

// PredictionError is the paper's ((real - predicted) / real).
func PredictionError(real, predicted float64) float64 {
	return metrics.PredictionError(real, predicted)
}

// PredictSpeedup predicts the speed-up of a recorded program on machine m,
// using a one-processor replay of the same recording as baseline. The
// baseline shares every non-CPU parameter of m (LWPs, communication delay,
// overrides), so the ratio isolates the processor count. The profile is
// derived once and shared by both replays.
func PredictSpeedup(log *Log, m Machine) (float64, error) {
	prof, err := trace.BuildProfile(log)
	if err != nil {
		return 0, err
	}
	uni, err := core.SimulateProfile(prof, m.Uniprocessor())
	if err != nil {
		return 0, err
	}
	multi, err := core.SimulateProfile(prof, m)
	if err != nil {
		return 0, err
	}
	return metrics.Speedup(uni.Duration, multi.Duration), nil
}

// Visualizer.
type (
	// View is a window onto an execution.
	View = viz.View
	// Inspector implements the popup and stepping facilities.
	Inspector = viz.Inspector
	// EventRef identifies one placed event.
	EventRef = viz.EventRef
	// ASCIIOptions, SVGOptions and HTMLOptions size the renderings.
	ASCIIOptions = viz.ASCIIOptions
	SVGOptions   = viz.SVGOptions
	HTMLOptions  = viz.HTMLOptions
)

// Zoom steps (x1.5 and x3, paper section 3.3).
const (
	ZoomFine   = viz.ZoomFine
	ZoomCoarse = viz.ZoomCoarse
)

// NewView creates a view of an execution timeline.
func NewView(tl *Timeline) (*View, error) { return viz.NewView(tl) }

// NewInspector creates an event inspector for a timeline.
func NewInspector(tl *Timeline) *Inspector { return viz.NewInspector(tl) }

// Analysis.
type (
	// ContentionReport ranks synchronization objects and threads by the
	// time spent in (or blocked by) them.
	ContentionReport = analysis.Report
	// ObjectContention is one object's aggregate in the report.
	ObjectContention = analysis.ObjectContention
)

// Analyze builds a contention report from an execution timeline.
func Analyze(tl *Timeline) (*ContentionReport, error) { return analysis.Analyze(tl) }

// Happens-before analysis.
type (
	// HBAnalysis is the happens-before analysis of a recording: vector
	// clocks, the critical-path speed-up bound, per-object serialization
	// scores and the lock-order graph.
	HBAnalysis = hb.Analysis
	// LockOrderGraph is the lock-acquisition-order graph with cycle
	// detection; its unsuppressed cycles are potential deadlocks.
	LockOrderGraph = hb.LockOrderGraph
	// LockCycle is one cycle of the lock-order graph.
	LockCycle = hb.Cycle
	// ObjectScore is one object's serialization score.
	ObjectScore = hb.ObjectScore
	// CritOverlay highlights critical-path call records in the flow
	// graph renderings (ASCIIOptions.Overlay / SVGOptions.Overlay).
	CritOverlay = viz.CritOverlay
)

// AnalyzeHB computes the happens-before analysis of a 1-CPU/1-LWP
// recording: the machine-independent speed-up upper bound (Work divided by
// the critical path), the top critical-path source sites, per-object
// serialization scores, and lock-order cycles flagging potential deadlocks
// the recorded run happened not to hit.
func AnalyzeHB(log *Log) (*HBAnalysis, error) { return hb.Analyze(log) }

// CPUReport summarizes per-processor occupancy.
type CPUReport = analysis.CPUReport

// AnalyzeCPUs computes per-processor busy time and utilization.
func AnalyzeCPUs(tl *Timeline) (*CPUReport, error) { return analysis.AnalyzeCPUs(tl) }

// RenderCPULanesASCII draws one lane per processor showing the running
// thread over time.
func RenderCPULanesASCII(v *View, opts ASCIIOptions) string {
	return viz.RenderCPULanesASCII(v, opts)
}

// RenderASCII draws the parallelism and execution flow graphs as text.
func RenderASCII(v *View, opts ASCIIOptions) string { return viz.Render(v, opts) }

// RenderSVG draws both graphs as an SVG document.
func RenderSVG(v *View, opts SVGOptions) string { return viz.RenderSVG(v, opts) }

// RenderHTML produces a self-contained HTML report: both graphs plus the
// contention and thread tables.
func RenderHTML(v *View, opts HTMLOptions) (string, error) { return viz.RenderHTML(v, opts) }

// RenderChromeTrace serializes a predicted execution as Chrome/Perfetto
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
func RenderChromeTrace(tl *Timeline) ([]byte, error) { return viz.RenderChromeTrace(tl) }

// Workloads.
type (
	// Workload is a runnable multithreaded program.
	Workload = workloads.Workload
	// WorkloadParams sizes a workload.
	WorkloadParams = workloads.Params
)

// Workloads lists the registered workload names.
func Workloads() []string { return workloads.Names() }

// SplashWorkloads lists the five SPLASH-2 analogues in Table 1 order.
func SplashWorkloads() []string { return workloads.Splash() }

// GetWorkload returns a workload by name.
func GetWorkload(name string) (*Workload, error) { return workloads.Get(name) }

// RecordWorkload records a registered workload under the Recorder.
func RecordWorkload(name string, prm WorkloadParams) (*Log, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	log, _, err := recorder.Record(w.Bind(prm), recorder.Options{Program: name})
	return log, err
}

// Experiments (the paper's evaluation).
type (
	// ExperimentOptions scales the experiment drivers.
	ExperimentOptions = experiments.Options
	// Table1Result is the regenerated Table 1.
	Table1Result = experiments.Table1Result
)

// Experiment drivers; each regenerates one table or figure of the paper.
var (
	ExperimentTable1      = experiments.Table1
	ExperimentFig2        = experiments.Fig2
	ExperimentFig4        = experiments.Fig4
	ExperimentFig5        = experiments.Fig5
	ExperimentCase5       = experiments.Case5
	ExperimentOverhead    = experiments.Overhead
	ExperimentLogStats    = experiments.LogStats
	ExperimentIO          = experiments.IOExtension
	ExperimentFaults      = experiments.Faults
	ExperimentBounds      = experiments.Bounds
	ExperimentPolicySweep = experiments.PolicySweep
	ExperimentChaos       = experiments.Chaos
	ExperimentSimSpeed    = experiments.SimSpeed
	ExperimentOptimize    = experiments.OptimizeSweep
	ExperimentServe       = experiments.ServeScale
	AblationBound         = experiments.AblationBound
	AblationCommDelay     = experiments.AblationCommDelay
	AblationLWPs          = experiments.AblationLWPs
)
