package vppb

import (
	"testing"

	"vppb/internal/experiments"
)

// One benchmark per table and figure of the paper's evaluation, each
// regenerating the artifact through the same driver cmd/vppb-bench uses.
// Reduced scales keep iterations short; `go run ./cmd/vppb-bench` produces
// the full-scale numbers recorded in EXPERIMENTS.md.

var benchOpts = experiments.Options{Scale: 0.3, Runs: 3}

// BenchmarkTable1 regenerates the whole of Table 1 (five applications,
// three machine sizes, predictions plus seeded reference runs).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-cell benchmarks of Table 1: the prediction pipeline (monitored
// recording plus trace-driven simulation) for each application at eight
// processors, the paper's headline column.
func benchPredict(b *testing.B, app string, cpus int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		log, err := RecordWorkload(app, WorkloadParams{Threads: cpus, Scale: benchOpts.Scale})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(log, Machine{CPUs: cpus}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Ocean_8P(b *testing.B)        { benchPredict(b, "ocean", 8) }
func BenchmarkTable1_WaterSpatial_8P(b *testing.B) { benchPredict(b, "waterspatial", 8) }
func BenchmarkTable1_FFT_8P(b *testing.B)          { benchPredict(b, "fft", 8) }
func BenchmarkTable1_Radix_8P(b *testing.B)        { benchPredict(b, "radix", 8) }
func BenchmarkTable1_LU_8P(b *testing.B)           { benchPredict(b, "lu", 8) }
func BenchmarkTable1_Ocean_2P(b *testing.B)        { benchPredict(b, "ocean", 2) }
func BenchmarkTable1_Ocean_4P(b *testing.B)        { benchPredict(b, "ocean", 4) }

// BenchmarkFig2_RecorderOutput regenerates figure 2 (the example program's
// recorded listing).
func BenchmarkFig2_RecorderOutput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_SortLog regenerates figure 4 (the per-thread sorting of
// the log).
func BenchmarkFig4_SortLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Render regenerates figure 5 (both graphs of a simulated
// execution, ASCII and SVG).
func BenchmarkFig5_Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase5_Naive predicts the naive producer/consumer program of
// section 5 on eight processors (figure 6's subject).
func BenchmarkCase5_Naive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, err := RecordWorkload("prodcons", WorkloadParams{Scale: benchOpts.Scale})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := PredictSpeedup(log, Machine{CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCase5_Improved predicts the improved program (figure 7's
// subject).
func BenchmarkCase5_Improved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, err := RecordWorkload("prodconsopt", WorkloadParams{Scale: benchOpts.Scale})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := PredictSpeedup(log, Machine{CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverhead_Intrusion measures the section-4 recording-intrusion
// experiment (five applications, monitored vs bare).
func BenchmarkOverhead_Intrusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overhead(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogStats_Sizes measures the section-4 log-size experiment.
func BenchmarkLogStats_Sizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LogStats(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks (A1-A3 in DESIGN.md).
func BenchmarkAblationBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBound(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCommDelay(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLWPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLWPs(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIOExtension measures the E8 I/O experiment (disk-bound
// dbserver, prediction vs reference).
func BenchmarkIOExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IOExtension(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// Component micro-benchmarks: the three VPPB stages in isolation on the
// densest workload (Ocean at eight threads).

func oceanLog(b *testing.B) *Log {
	b.Helper()
	log, err := RecordWorkload("ocean", WorkloadParams{Threads: 8, Scale: benchOpts.Scale})
	if err != nil {
		b.Fatal(err)
	}
	return log
}

// BenchmarkRecorder_Ocean8 measures a full monitored execution.
func BenchmarkRecorder_Ocean8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = oceanLog(b)
	}
}

// BenchmarkSimulator_Ocean8 measures a trace-driven replay alone.
func BenchmarkSimulator_Ocean8(b *testing.B) {
	log := oceanLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(log, Machine{CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisualizer_Ocean8 measures rendering both graphs.
func BenchmarkVisualizer_Ocean8(b *testing.B) {
	log := oceanLog(b)
	res, err := Simulate(log, Machine{CPUs: 8})
	if err != nil {
		b.Fatal(err)
	}
	view, err := NewView(res.Timeline)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RenderASCII(view, ASCIIOptions{Width: 120, MaxFlowRows: 16})
		_ = RenderSVG(view, SVGOptions{})
	}
}

// Profile-sharing benchmarks: the tentpole of the concurrent prediction
// pipeline. BuildProfile in isolation, a simulation that reuses a
// prebuilt profile vs one that rebuilds it per call, and the parallel
// sweep over one shared profile.

// BenchmarkBuildProfile_Ocean8 measures deriving the behaviour profile
// (per-thread split, burst extraction, call records) alone.
func BenchmarkBuildProfile_Ocean8(b *testing.B) {
	log := oceanLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildProfile(log); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateProfile_Shared replays a prebuilt, shared profile —
// what every simulation after the first costs under profile reuse.
func BenchmarkSimulateProfile_Shared(b *testing.B) {
	log := oceanLog(b)
	prof, err := BuildProfile(log)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateProfile(prof, Machine{CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateProfile_Rebuild is the old cost model: profile rebuilt
// on every simulation (what Simulate does). The Shared/Rebuild gap is the
// per-simulation saving of profile reuse.
func BenchmarkSimulateProfile_Rebuild(b *testing.B) {
	log := oceanLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(log, Machine{CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep_FFT measures the -sweep fan-out: one shared profile, the
// uniprocessor baseline plus four machine sizes over the worker pool.
func BenchmarkSweep_FFT(b *testing.B) {
	log, err := RecordWorkload("fft", WorkloadParams{Threads: 8, Scale: benchOpts.Scale})
	if err != nil {
		b.Fatal(err)
	}
	prof, err := BuildProfile(log)
	if err != nil {
		b.Fatal(err)
	}
	machines := []Machine{{CPUs: 1}, {CPUs: 2}, {CPUs: 4}, {CPUs: 8}, {CPUs: 16}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMany(prof, machines); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogEncode_Binary and ..._Text measure the log codecs.
func BenchmarkLogEncode_Binary(b *testing.B) {
	log := oceanLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := MarshalLogBinary(log)
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkLogEncode_Text(b *testing.B) {
	log := oceanLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := MarshalLogText(log)
		b.SetBytes(int64(len(data)))
	}
}
